"""Batched + streaming receiver engine — the RX mirror of
:mod:`repro.core.encoders`.

The paper's figure of merit ("% correlation w.r.t. raw muscle force") is
computed on the receiver, and the per-stream decoders in
:mod:`repro.rx.reconstruction` / :mod:`repro.rx.windowing` process one
:class:`~repro.core.events.EventStream` at a time.  This module provides
the two scaling paths on top of the same maths:

Batching
--------
:func:`reconstruct_batch` decodes many streams that share one observation
window in a handful of whole-matrix numpy calls: all streams' events are
binned with a single ``np.bincount`` over ``(stream, bin)`` pairs
(:func:`binned_counts_batch`), smoothing runs as one axis-aware
:func:`~repro.signals.envelope.moving_average` over the
``(n_streams, n_bins)`` matrix, and the level ZOH is a ``searchsorted``
per row with the decay applied to the whole matrix at once.  Scoring
pairs with :func:`repro.rx.correlation.pearson_batch` /
:func:`~repro.rx.correlation.aligned_correlation_percent_batch` so a whole
batch is correlated against a stacked reference matrix in one call.
Per-row results are **bit-identical** to the per-stream functions.

Streaming
---------
:class:`StreamingDecoder` is the receive-side counterpart of
:class:`~repro.core.encoders.StreamingEncoder`: feed it the incremental
``EventStream`` chunks that ``StreamingEncoder.push`` emits and it folds
events into per-bin state (counts, level ZOH) as they arrive, carrying the
residual bin and the smoothing-window tail across chunks.  The
concatenation of every ``push()`` return plus ``finalize()`` is
bit-identical to the one-shot decoder on the merged stream:

* ``scheme="atc"`` (event-rate decoding) emits eagerly — each ``push``
  returns the envelope samples that became final, about half a smoothing
  window behind the newest event.
* ``scheme="datc"`` (hybrid decoding) still ingests incrementally — events
  are reduced to O(n_bins) state on arrival, not stored — but emits only
  at ``finalize()``: the hybrid estimator normalises its rate term by the
  *global* rate peak, which no causal decoder can know early.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ATCConfig, DATCConfig
from ..core.events import EventStream
from ..signals.envelope import moving_average
from .windowing import grid_centers, grid_edges, stream_bins

__all__ = [
    "StreamingDecoder",
    "reconstruct_batch",
    "binned_counts_batch",
    "event_rate_batch",
    "level_zoh_batch",
    "stream_chunks",
]


def stream_chunks(stream: EventStream, bounds) -> "list[EventStream]":
    """Split a one-shot stream into incremental ``push()`` chunks.

    ``bounds`` are the ascending chunk end times; the last must equal
    ``stream.duration_s``.  Chunk *k* carries the events in
    ``[bounds[k-1], bounds[k])`` — right-closed on the final chunk so an
    event at the stream's end time is still delivered — with
    ``duration_s = bounds[k]``: exactly the incremental contract
    ``StreamingEncoder.push`` produces and ``StreamingDecoder.push``
    expects.  The boundary rules are load-bearing for the chunked ==
    one-shot bit-identity, so every chunker (CLI bench, tests) shares
    this helper.
    """
    bounds = [float(b) for b in bounds]
    if not bounds or bounds[-1] != stream.duration_s:
        raise ValueError(
            f"bounds must end at stream.duration_s ({stream.duration_s}), "
            f"got {bounds[-1] if bounds else 'no bounds'}"
        )
    out, start = [], 0.0
    for stop in bounds:
        last = stop >= stream.duration_s
        mask = (stream.times >= start) & (
            (stream.times <= stop) if last else (stream.times < stop)
        )
        out.append(
            EventStream(
                times=stream.times[mask],
                duration_s=stop,
                levels=stream.levels[mask] if stream.has_levels else None,
                clock_hz=stream.clock_hz,
                symbols_per_event=stream.symbols_per_event,
            )
        )
        start = stop
    return out


def _batch_grid(streams, fs_out: float) -> "tuple[list[EventStream], int]":
    """Validate a homogeneous batch; return (streams, shared bin count)."""
    streams = list(streams)
    if not streams:
        raise ValueError("need at least one stream")
    duration = streams[0].duration_s
    for s in streams[1:]:
        if s.duration_s != duration:
            raise ValueError(
                "all streams must share duration_s for batched decoding, got "
                f"{s.duration_s} vs {duration}"
            )
    n = 0
    for s in streams:
        n = stream_bins(s, fs_out)  # raises for events no grid bin can hold
    return streams, n


def binned_counts_batch(streams, fs_out: float) -> np.ndarray:
    """Per-stream event counts on the shared grid: ``(n_streams, n_bins)``.

    One ``np.bincount`` over flattened ``(stream, bin)`` pairs replaces
    ``n_streams`` :func:`repro.rx.windowing.binned_counts` calls; rows are
    bit-identical (the bin assignment reproduces ``np.histogram``'s
    left-inclusive rule with the last bin closed on the right).
    """
    streams, n = _batch_grid(streams, fs_out)
    n_streams = len(streams)
    if n == 0:
        return np.zeros((n_streams, 0), dtype=np.intp)
    sizes = np.array([s.n_events for s in streams], dtype=np.intp)
    if sizes.sum() == 0:
        return np.zeros((n_streams, n), dtype=np.intp)
    edges = grid_edges(n, fs_out)
    times = np.concatenate([s.times for s in streams])
    rows = np.repeat(np.arange(n_streams), sizes)
    # O(1)-per-event bin assignment (the trick behind np.histogram's
    # uniform fast path): multiply out the approximate bin, then correct
    # by at most one step against the true edge values, so the result
    # satisfies exactly edges[idx] <= t < edges[idx+1].
    idx = np.clip((times * fs_out).astype(np.intp), 0, n - 1)
    idx -= times < edges[idx]
    idx += times >= edges[np.minimum(idx + 1, n)]
    idx[times == edges[-1]] = n - 1  # histogram's right-closed last bin
    valid = (idx >= 0) & (idx < n)
    if valid.all():  # common case: skip the boolean gathers
        flat = rows * n + idx
    else:
        flat = rows[valid] * n + idx[valid]
    counts = np.bincount(flat, minlength=n_streams * n)
    return counts.reshape(n_streams, n).astype(np.intp, copy=False)


def event_rate_batch(
    streams, fs_out: float, window_s: float = 0.25
) -> np.ndarray:
    """Smoothed event rate (Hz) for every stream: ``(n_streams, n_bins)``.

    The batched form of :func:`repro.rx.windowing.event_rate` (the ATC
    decoder): one binning pass, one axis-aware moving average.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    counts = binned_counts_batch(streams, fs_out)
    window = max(1, int(round(window_s * fs_out)))
    return moving_average(counts.astype(float), window, axis=-1) * fs_out


def _per_row(value, n_streams: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-stream sequence to one value per row."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (n_streams,))
    if arr.shape != (n_streams,):
        raise ValueError(
            f"{name} must be a scalar or one value per stream "
            f"({n_streams}), got shape {arr.shape}"
        )
    return arr


def level_zoh_batch(
    streams,
    fs_out: float = 100.0,
    vref=1.0,
    dac_bits=4,
    silence_timeout_s: float = 0.5,
    decay_tau_s: float = 0.5,
) -> np.ndarray:
    """Batched :func:`repro.rx.reconstruction.level_zoh`.

    The per-row latest-event lookup stays a ``searchsorted`` per stream
    (rows have ragged event counts), but the hold/decay arithmetic runs on
    the whole ``(n_streams, n_bins)`` matrix in single numpy ops.

    ``vref`` and ``dac_bits`` may be scalars (one decode config for the
    whole batch) or per-stream sequences of length ``n_streams`` — the
    hook that lets heterogeneous-DAC sweeps (each row decoded at its own
    resolution) share one batched call.  Rows stay bit-identical to the
    per-stream decoder either way.
    """
    streams, n = _batch_grid(streams, fs_out)
    n_streams = len(streams)
    vref = _per_row(vref, n_streams, "vref")
    dac_bits = _per_row(dac_bits, n_streams, "dac_bits")
    t = grid_centers(n, fs_out)
    if not any(s.n_events for s in streams):
        return np.zeros((n_streams, n))
    # The latest-event lookup is a searchsorted per row (rows have ragged,
    # independently sorted event times); everything after runs as
    # whole-matrix ops on gathers from the concatenated event arrays.
    idx = np.full((n_streams, n), -1, dtype=np.intp)
    for r, stream in enumerate(streams):
        if stream.n_events:
            idx[r] = np.searchsorted(stream.times, t, side="right") - 1
    times_all = np.concatenate([s.times for s in streams])
    volts_all = np.concatenate(
        [
            s.level_voltages(vref=float(vref[r]), dac_bits=int(dac_bits[r]))
            if s.n_events
            else np.zeros(0)
            for r, s in enumerate(streams)
        ]
    )
    offsets = np.concatenate(
        [[0], np.cumsum([s.n_events for s in streams])[:-1]]
    ).astype(np.intp)
    # Clipped gather + mask multiply instead of boolean fancy indexing;
    # bit-identical (threshold voltages are non-negative, so masked
    # entries come out exactly 0.0) and considerably cheaper.
    valid = (idx >= 0).astype(float)
    # The min keeps an all-empty final row's (masked-out) gather in range.
    clipped = np.minimum(np.maximum(idx, 0) + offsets[:, None], times_all.size - 1)
    out = volts_all[clipped] * valid
    gap = (t - times_all[clipped]) * valid
    overdue = np.maximum(gap - silence_timeout_s, 0.0)
    out *= np.exp(-overdue / decay_tau_s)
    return out


def reconstruct_batch(
    streams,
    scheme: str = "datc",
    config: "ATCConfig | DATCConfig | None" = None,
    fs_out: float = 100.0,
    window_s: float = 0.25,
    silence_timeout_s: float = 0.5,
    rate_weight: float = 0.7,
    vref=None,
    dac_bits=None,
) -> np.ndarray:
    """Decode a homogeneous batch of streams to an envelope matrix.

    The batched receiver: ``scheme="atc"`` applies the event-rate decoder
    (:func:`~repro.rx.reconstruction.reconstruct_rate`), ``"datc"`` the
    hybrid level+rate decoder
    (:func:`~repro.rx.reconstruction.reconstruct_hybrid`) with
    ``config``'s ``vref`` / ``dac_bits``.  Returns ``(n_streams, n_bins)``
    with every row bit-identical to the per-stream decoder.

    ``vref`` / ``dac_bits`` override ``config``'s values when given, and
    may be per-stream sequences (see :func:`level_zoh_batch`), so a batch
    whose rows decode at *different* DAC operating points — the
    DAC-resolution sweep — still runs through one call.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    if scheme == "atc":
        return event_rate_batch(streams, fs_out, window_s=window_s)
    if not 0.0 <= rate_weight <= 1.0:
        raise ValueError(f"rate_weight must be within [0, 1], got {rate_weight}")
    config = config if config is not None else DATCConfig()
    level = level_zoh_batch(
        streams,
        fs_out,
        vref=vref if vref is not None else config.vref,
        dac_bits=dac_bits if dac_bits is not None else config.dac_bits,
        silence_timeout_s=silence_timeout_s,
    )
    rate = event_rate_batch(streams, fs_out, window_s=window_s)
    peak = rate.max(axis=1) if rate.shape[1] else np.zeros(rate.shape[0])
    rate_norm = np.divide(
        rate, peak[:, None], out=rate.copy(), where=peak[:, None] > 0
    )
    combined = level * (1.0 - rate_weight + rate_weight * rate_norm)
    window = max(1, int(round(window_s * fs_out)))
    return moving_average(combined, window, axis=-1)


class StreamingDecoder:
    """Incremental receiver: event-stream chunks in, envelope chunks out.

    Feed it the ``EventStream`` chunks a
    :class:`~repro.core.encoders.StreamingEncoder` emits (absolute event
    times, ``duration_s`` = total time covered so far) and read envelope
    samples back.  The concatenation of all ``push()`` returns plus the
    ``finalize()`` tail is bit-identical to the one-shot decoder
    (:func:`~repro.rx.reconstruction.reconstruct_rate` for ``"atc"``,
    :func:`~repro.rx.reconstruction.reconstruct_hybrid` for ``"datc"``)
    run on the merged stream.

    Events are folded into per-bin state as they arrive — bin counts plus,
    for D-ATC, the per-bin level-ZOH sample — so the working set is the
    output grid (``fs_out`` bins/s), not the event history.  The residual
    state carried across chunks: events at/after the youngest bin edge
    (their bin assignment is settled only when the grid outgrows them),
    the newest ZOH hold value, and the smoothing-window tail.

    ``scheme="atc"`` emits eagerly: ``push`` returns the envelope bins
    whose smoothing window can no longer change, roughly half a window
    behind the newest event.  ``scheme="datc"`` returns empty arrays from
    ``push`` and everything from ``finalize()``: the hybrid decoder
    normalises its rate term by the global rate peak, which only the end
    of the stream reveals — its state is still O(n_bins), only the
    *emission* is deferred.

    Parameters mirror :func:`reconstruct_batch`; ``config`` supplies
    ``vref`` / ``dac_bits`` for D-ATC level decoding.
    """

    def __init__(
        self,
        scheme: str = "datc",
        config: "ATCConfig | DATCConfig | None" = None,
        fs_out: float = 100.0,
        window_s: float = 0.25,
        silence_timeout_s: float = 0.5,
        decay_tau_s: float = 0.5,
        rate_weight: float = 0.7,
    ) -> None:
        if scheme not in ("atc", "datc"):
            raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
        if fs_out <= 0:
            raise ValueError(f"fs_out must be positive, got {fs_out}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if not 0.0 <= rate_weight <= 1.0:
            raise ValueError(
                f"rate_weight must be within [0, 1], got {rate_weight}"
            )
        self.scheme = scheme
        if config is None:
            config = DATCConfig() if scheme == "datc" else ATCConfig()
        self.config = config
        self.fs_out = fs_out
        self.window_s = window_s
        self.silence_timeout_s = silence_timeout_s
        self.decay_tau_s = decay_tau_s
        self.rate_weight = rate_weight
        self._window = max(1, int(round(window_s * fs_out)))
        self._duration = 0.0
        self._t_last = -1.0  # newest event time (-1 = none yet)
        self._n_events = 0
        # Bin storage is allocated at capacity and grown by doubling so a
        # forever-running decode pays O(chunk) per push, not O(total bins);
        # the live grid is the [:_n] prefix of each array.
        self._n = 0
        self._cap = 0
        self._counts = np.zeros(0, dtype=np.intp)
        self._edges = grid_edges(0, fs_out)
        self._centers = grid_centers(0, fs_out)
        self._pending: "list[np.ndarray]" = []  # events at/after the last edge
        self._csum = [0.0]  # running cumulative count over closed bins
        self._emitted = 0
        self._parts: "list[np.ndarray]" = []
        # D-ATC level-ZOH state
        self._zoh_volt = np.zeros(0)
        self._zoh_gap = np.zeros(0)
        self._zoh_filled = 0
        self._carry_t = 0.0  # newest event at/before the settled frontier
        self._carry_v = 0.0
        self._has_carry = False
        self._recent_t = np.zeros(0)  # events newer than the settled frontier
        self._recent_v = np.zeros(0)
        self._finalized = False

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Observation time covered by the chunks consumed so far."""
        return self._duration

    @property
    def n_events(self) -> int:
        """Events consumed so far."""
        return self._n_events

    @property
    def n_bins(self) -> int:
        """Output-grid bins the consumed duration spans."""
        return self._n

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has run (no more pushes accepted)."""
        return self._finalized

    @property
    def envelope(self) -> np.ndarray:
        """All envelope samples emitted so far (complete after finalize)."""
        if not self._parts:
            return np.zeros(0)
        return np.concatenate(self._parts)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, chunk: EventStream) -> np.ndarray:
        """Consume one incremental chunk; return newly final envelope bins.

        ``chunk`` follows the ``StreamingEncoder.push`` contract: only new
        events, absolute times (non-decreasing across pushes), and
        ``duration_s`` equal to the total time covered so far.
        """
        if self._finalized:
            raise RuntimeError("push() called after finalize()")
        if chunk.duration_s < self._duration:
            raise ValueError(
                f"chunk duration_s went backwards: {chunk.duration_s} after "
                f"{self._duration}"
            )
        times = chunk.times
        volts = None
        if times.size:
            if times[0] < self._t_last:
                raise ValueError(
                    "event times must be non-decreasing across pushes, got "
                    f"{times[0]} after {self._t_last}"
                )
            if self.scheme == "datc":
                if chunk.levels is None:
                    raise ValueError(
                        "D-ATC decoding needs level payloads (chunk.levels)"
                    )
                volts = chunk.level_voltages(
                    vref=self.config.vref, dac_bits=self.config.dac_bits
                )
            self._t_last = float(times[-1])
            self._n_events += times.size
        self._duration = chunk.duration_s
        self._extend_grid()
        self._ingest_counts(times)
        if self.scheme == "datc":
            self._ingest_zoh(times, volts)
            return np.zeros(0)
        return self._emit_rate()

    def _extend_grid(self) -> None:
        n = int(np.floor(self._duration * self.fs_out))
        if n <= self._n:
            return
        if n > self._cap:
            cap = max(n, 2 * self._cap, 64)
            counts = np.zeros(cap, dtype=np.intp)
            counts[: self._n] = self._counts[: self._n]
            self._counts = counts
            # Edge/centre values are prefix-stable (k / fs_out), so the
            # capacity arrays serve every future logical size too.
            self._edges = grid_edges(cap, self.fs_out)
            self._centers = grid_centers(cap, self.fs_out)
            if self.scheme == "datc":
                volt = np.zeros(cap)
                volt[: self._n] = self._zoh_volt[: self._n]
                self._zoh_volt = volt
                gap = np.zeros(cap)
                gap[: self._n] = self._zoh_gap[: self._n]
                self._zoh_gap = gap
            self._cap = cap
        self._n = n

    def _ingest_counts(self, times: np.ndarray) -> None:
        if times.size:
            self._pending.append(np.asarray(times, dtype=float))
        n = self._n
        if not self._pending or n == 0:
            return
        pend = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )
        idx = np.searchsorted(self._edges[: n + 1], pend, side="right") - 1
        # Events at/after the youngest edge stay pending: whether that edge
        # is the grid's (right-closed) end is known only when it stops
        # growing.
        inside = idx < n
        if np.any(inside):
            # A push's events span a narrow bin range; counting only that
            # range keeps the update O(chunk) instead of O(total bins).
            sub = idx[inside]
            lo = int(sub[0])
            hi = int(sub[-1]) + 1
            self._counts[lo:hi] += np.bincount(sub - lo, minlength=hi - lo)
        held = pend[~inside]
        self._pending = [held] if held.size else []

    def _ingest_zoh(self, times: np.ndarray, volts: "np.ndarray | None") -> None:
        if times.size:
            self._recent_t = np.concatenate([self._recent_t, times])
            self._recent_v = np.concatenate([self._recent_v, volts])
        # Bins with centre < newest event are settled: any future event is
        # at/after t_last, hence after those centres.
        settle_end = int(
            np.searchsorted(self._centers[: self._n], self._t_last, side="left")
        )
        self._settle_zoh(self._centers, settle_end)

    def _settle_zoh(self, centers: np.ndarray, settle_end: int) -> None:
        if settle_end <= self._zoh_filled:
            return
        c = centers[self._zoh_filled : settle_end]
        volt = np.zeros(c.size)
        t_ev = np.full(c.size, np.nan)
        if self._has_carry:
            volt[:] = self._carry_v
            t_ev[:] = self._carry_t
        idx = np.searchsorted(self._recent_t, c, side="right") - 1
        sel = idx >= 0
        volt[sel] = self._recent_v[idx[sel]]
        t_ev[sel] = self._recent_t[idx[sel]]
        have = ~np.isnan(t_ev)
        gap = np.zeros(c.size)
        gap[have] = c[have] - t_ev[have]
        self._zoh_volt[self._zoh_filled : settle_end] = volt
        self._zoh_gap[self._zoh_filled : settle_end] = gap
        self._zoh_filled = settle_end
        # Only the newest event at/before the settled frontier can source a
        # future bin; fold everything older into the carry.
        keep_from = int(np.searchsorted(self._recent_t, c[-1], side="right"))
        if keep_from > 0:
            self._carry_t = float(self._recent_t[keep_from - 1])
            self._carry_v = float(self._recent_v[keep_from - 1])
            self._has_carry = True
            self._recent_t = self._recent_t[keep_from:]
            self._recent_v = self._recent_v[keep_from:]

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _closed_bins(self) -> int:
        """Bins whose count can no longer change (right edge <= t_last)."""
        n = self._n
        if n == 0 or self._t_last < 0:
            return 0
        closed = int(
            np.searchsorted(self._edges[1 : n + 1], self._t_last, "right")
        )
        if self._pending:
            # A pending event (at/after the youngest edge) can still fold
            # back into the last bin at finalize via the final grid's
            # right-closed rule, so that bin is not closed yet.
            closed = min(closed, n - 1)
        return closed

    def _emit_rate(self) -> np.ndarray:
        n = self._n
        # Until a full window of bins exists the final window length (and
        # with it every sample) is still unknown.
        if n < self._window:
            return np.zeros(0)
        half_lo = self._window // 2
        half_hi = self._window - half_lo
        n_closed = self._closed_bins()
        while len(self._csum) - 1 < n_closed:
            k = len(self._csum) - 1
            self._csum.append(self._csum[-1] + float(self._counts[k]))
        emit_end = n_closed - half_hi + 1
        if emit_end <= self._emitted:
            return np.zeros(0)
        i = np.arange(self._emitted, emit_end)
        lo = np.clip(i - half_lo, 0, None)
        hi = i + half_hi
        # Materialise only the cumulative-sum window this emission needs,
        # keeping a push O(chunk) even after hours of stream.
        base = int(lo[0])
        csum = np.asarray(self._csum[base : int(hi[-1]) + 1])
        vals = (csum[hi - base] - csum[lo - base]) / (hi - lo) * self.fs_out
        self._emitted = emit_end
        self._parts.append(vals)
        return vals

    def _flush_pending(self) -> None:
        n = self._n
        if not self._pending:
            return
        pend = np.concatenate(self._pending)
        self._pending = []
        if n == 0:
            raise ValueError("duration too short for the requested output rate")
        edges = self._edges[: n + 1]
        idx = np.searchsorted(edges, pend, side="right") - 1
        idx[pend == edges[-1]] = n - 1  # the final grid closes its last bin
        inside = (idx >= 0) & (idx < n)
        if np.any(inside):
            self._counts[:n] += np.bincount(idx[inside], minlength=n)

    def _full_rate(self) -> np.ndarray:
        counts = self._counts[: self._n].astype(float)
        return moving_average(counts, self._window) * self.fs_out

    def finalize(self) -> np.ndarray:
        """Flush residual state; return the remaining envelope samples."""
        if self._finalized:
            raise RuntimeError("finalize() called twice")
        self._finalized = True
        self._flush_pending()
        n = self._n
        if self.scheme == "atc":
            tail = self._full_rate()[self._emitted :]
            self._emitted = n
            if tail.size:
                self._parts.append(tail)
            return tail
        # D-ATC hybrid: settle the ZOH tail, then combine level and rate
        # exactly as reconstruct_hybrid does.
        self._settle_zoh(self._centers, n)
        if self._n_events == 0:
            level = np.zeros(n)
        else:
            overdue = np.maximum(
                self._zoh_gap[:n] - self.silence_timeout_s, 0.0
            )
            level = self._zoh_volt[:n] * np.exp(-overdue / self.decay_tau_s)
        rate = self._full_rate()
        peak = rate.max() if rate.size else 0.0
        rate_norm = rate / peak if peak > 0 else rate
        combined = level * (
            1.0 - self.rate_weight + self.rate_weight * rate_norm
        )
        env = moving_average(combined, self._window)
        self._emitted = n
        if env.size:
            self._parts.append(env)
        return env
