"""Moving-window event-rate estimators (the receiver's "low-complexity
windowing" used to recover force information from ATC pulse trains).
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventStream
from ..signals.envelope import moving_average

__all__ = ["binned_counts", "event_rate", "exponential_rate"]


def binned_counts(stream: EventStream, fs_out: float) -> np.ndarray:
    """Event counts in uniform bins of ``1 / fs_out`` seconds.

    Returns an integer array of length ``floor(duration * fs_out)`` (the
    uniform grid every reconstructor works on).
    """
    if fs_out <= 0:
        raise ValueError(f"fs_out must be positive, got {fs_out}")
    n = int(np.floor(stream.duration_s * fs_out))
    if n == 0:
        raise ValueError("duration too short for the requested output rate")
    edges = np.arange(n + 1) / fs_out
    counts, _ = np.histogram(stream.times, bins=edges)
    return counts


def event_rate(stream: EventStream, fs_out: float, window_s: float = 0.25) -> np.ndarray:
    """Smoothed instantaneous event rate (Hz) on a uniform grid.

    Bin the events at ``fs_out`` and average over a centred window of
    ``window_s`` seconds — the classic ATC force decoder.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    counts = binned_counts(stream, fs_out)
    window = max(1, int(round(window_s * fs_out)))
    return moving_average(counts.astype(float), window) * fs_out


def exponential_rate(stream: EventStream, fs_out: float, tau_s: float = 0.25) -> np.ndarray:
    """Causal exponentially-smoothed event rate (Hz).

    A first-order (leaky integrator) alternative to the moving window —
    the cheapest hardware-friendly decoder.
    """
    if tau_s <= 0:
        raise ValueError(f"tau_s must be positive, got {tau_s}")
    counts = binned_counts(stream, fs_out).astype(float)
    alpha = 1.0 - np.exp(-1.0 / (tau_s * fs_out))
    out = np.empty_like(counts)
    acc = 0.0
    for i, c in enumerate(counts):
        acc += alpha * (c - acc)
        out[i] = acc
    return out * fs_out
