"""Moving-window event-rate estimators (the receiver's "low-complexity
windowing" used to recover force information from ATC pulse trains), plus
the shared output-grid helpers every reconstructor works on.

All receiver-side estimators share one uniform output grid: ``n`` bins of
``1 / fs_out`` seconds covering ``[0, n / fs_out]``.  The helpers here are
the single source of truth for that grid — :mod:`repro.rx.reconstruction`
and the batched engine (:mod:`repro.rx.decoders`) both build on them.

Zero-duration and empty streams (legal since the incremental
``StreamingEncoder`` produces them before its first whole clock period)
yield *empty* output arrays; an error is raised only when a stream carries
events that the requested grid cannot represent.
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventStream
from ..signals.envelope import moving_average

__all__ = [
    "stream_bins",
    "grid_edges",
    "grid_centers",
    "binned_counts",
    "event_rate",
    "exponential_rate",
]


def stream_bins(stream: EventStream, fs_out: float) -> int:
    """Number of output bins for ``stream`` on a ``fs_out`` grid.

    ``floor(duration * fs_out)`` — zero for zero-duration or too-short
    *empty* streams (the caller then returns empty arrays), but an error
    when events exist that no grid bin could hold.
    """
    if fs_out <= 0:
        raise ValueError(f"fs_out must be positive, got {fs_out}")
    n = int(np.floor(stream.duration_s * fs_out))
    if n == 0 and stream.n_events:
        raise ValueError("duration too short for the requested output rate")
    return n


def grid_edges(n_bins: int, fs_out: float) -> np.ndarray:
    """Bin edges of the uniform output grid: ``k / fs_out`` for k in 0..n."""
    return np.arange(n_bins + 1) / fs_out


def grid_centers(n_bins: int, fs_out: float) -> np.ndarray:
    """Bin centres of the uniform output grid."""
    return (np.arange(n_bins) + 0.5) / fs_out


def binned_counts(stream: EventStream, fs_out: float) -> np.ndarray:
    """Event counts in uniform bins of ``1 / fs_out`` seconds.

    Returns an integer array of length ``floor(duration * fs_out)`` (the
    uniform grid every reconstructor works on); empty for empty
    zero-duration streams.
    """
    n = stream_bins(stream, fs_out)
    if n == 0:
        return np.zeros(0, dtype=np.intp)
    counts, _ = np.histogram(stream.times, bins=grid_edges(n, fs_out))
    return counts


def event_rate(stream: EventStream, fs_out: float, window_s: float = 0.25) -> np.ndarray:
    """Smoothed instantaneous event rate (Hz) on a uniform grid.

    Bin the events at ``fs_out`` and average over a centred window of
    ``window_s`` seconds — the classic ATC force decoder.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    counts = binned_counts(stream, fs_out)
    window = max(1, int(round(window_s * fs_out)))
    return moving_average(counts.astype(float), window) * fs_out


def exponential_rate(stream: EventStream, fs_out: float, tau_s: float = 0.25) -> np.ndarray:
    """Causal exponentially-smoothed event rate (Hz).

    A first-order (leaky integrator) alternative to the moving window —
    the cheapest hardware-friendly decoder.  The recurrence
    ``acc[i] = beta * acc[i-1] + alpha * c[i]`` is evaluated with a
    vectorised logarithmic prefix scan (``log2(n)`` whole-array passes)
    instead of a per-sample Python loop; the scan only ever multiplies by
    ``beta**s <= 1``, so it is overflow-free for arbitrarily long streams
    and agrees with the sequential recurrence to ~1e-15 relative.
    """
    if tau_s <= 0:
        raise ValueError(f"tau_s must be positive, got {tau_s}")
    counts = binned_counts(stream, fs_out).astype(float)
    alpha = 1.0 - np.exp(-1.0 / (tau_s * fs_out))
    beta = 1.0 - alpha
    out = alpha * counts
    step = 1
    while step < out.size:
        out[step:] += (beta ** step) * out[:-step]
        step *= 2
    return out * fs_out
