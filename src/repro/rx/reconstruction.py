"""Receiver-side envelope reconstruction from event streams.

Three estimators, matching how the two schemes convey information:

* :func:`reconstruct_rate` — ATC: the smoothed event *rate* is the force
  estimate (the only information a fixed-threshold pulse train carries).
* :func:`reconstruct_levels` — D-ATC: the received 4-bit threshold level
  is itself an amplitude measurement (the DTC servoes ``Vth`` onto the
  signal level), so a zero-order hold of the per-event level voltage,
  with a decay during silences (no events -> signal below the lowest
  threshold), tracks the envelope.
* :func:`reconstruct_hybrid` — D-ATC refined: the level provides the
  coarse (62.5 mV) amplitude and the within-frame event rate adds the
  fine structure between DAC steps.  This is the default D-ATC decoder
  used by the experiments.
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventStream
from ..signals.envelope import moving_average
from .windowing import event_rate, grid_centers, stream_bins

__all__ = [
    "reconstruct_rate",
    "reconstruct_levels",
    "reconstruct_hybrid",
    "level_zoh",
]


def reconstruct_rate(
    stream: EventStream, fs_out: float = 100.0, window_s: float = 0.25
) -> np.ndarray:
    """ATC decoder: smoothed event rate (arbitrary units ∝ force)."""
    return event_rate(stream, fs_out, window_s=window_s)


def level_zoh(
    stream: EventStream,
    fs_out: float = 100.0,
    vref: float = 1.0,
    dac_bits: int = 4,
    silence_timeout_s: float = 0.5,
    decay_tau_s: float = 0.5,
) -> np.ndarray:
    """Zero-order hold of per-event threshold voltages on a uniform grid.

    Between events the last received level is held; once the silence
    exceeds ``silence_timeout_s`` the estimate decays exponentially with
    ``decay_tau_s`` — no events means the signal sits *below* the current
    threshold, so holding it indefinitely would overestimate rest periods.
    Before the first event the estimate is 0.
    """
    t = grid_centers(stream_bins(stream, fs_out), fs_out)
    if stream.n_events == 0:
        return np.zeros(t.size)
    volts = stream.level_voltages(vref=vref, dac_bits=dac_bits)
    # Index of the latest event at or before each grid point (-1 = none).
    idx = np.searchsorted(stream.times, t, side="right") - 1
    out = np.zeros(t.size)
    valid = idx >= 0
    out[valid] = volts[idx[valid]]
    gap = np.zeros(t.size)
    gap[valid] = t[valid] - stream.times[idx[valid]]
    overdue = np.maximum(gap - silence_timeout_s, 0.0)
    out *= np.exp(-overdue / decay_tau_s)
    return out


def reconstruct_levels(
    stream: EventStream,
    fs_out: float = 100.0,
    vref: float = 1.0,
    dac_bits: int = 4,
    smooth_window_s: float = 0.25,
    silence_timeout_s: float = 0.5,
) -> np.ndarray:
    """D-ATC decoder using only the level payload (smoothed ZOH)."""
    zoh = level_zoh(
        stream,
        fs_out,
        vref=vref,
        dac_bits=dac_bits,
        silence_timeout_s=silence_timeout_s,
    )
    window = max(1, int(round(smooth_window_s * fs_out)))
    return moving_average(zoh, window)


def reconstruct_hybrid(
    stream: EventStream,
    fs_out: float = 100.0,
    vref: float = 1.0,
    dac_bits: int = 4,
    smooth_window_s: float = 0.25,
    silence_timeout_s: float = 0.5,
    rate_weight: float = 0.7,
) -> np.ndarray:
    """D-ATC decoder combining level (coarse) and rate (fine) information.

    The level ZOH quantises the envelope to the DAC grid; multiplying by a
    normalised event-rate term restores variation *between* DAC steps
    (within a frame the rate grows with the above-threshold fraction).
    ``rate_weight`` = 0 reduces to :func:`reconstruct_levels`.
    """
    if not 0.0 <= rate_weight <= 1.0:
        raise ValueError(f"rate_weight must be within [0, 1], got {rate_weight}")
    level_part = level_zoh(
        stream,
        fs_out,
        vref=vref,
        dac_bits=dac_bits,
        silence_timeout_s=silence_timeout_s,
    )
    rate = event_rate(stream, fs_out, window_s=smooth_window_s)
    peak = rate.max() if rate.size else 0.0
    rate_norm = rate / peak if peak > 0 else rate
    combined = level_part * (1.0 - rate_weight + rate_weight * rate_norm)
    window = max(1, int(round(smooth_window_s * fs_out)))
    return moving_average(combined, window)
