"""Configuration objects for the ATC and D-ATC encoders.

All tunables of paper Secs. II-III live here with the paper's values as
defaults, so an encoder call with a bare ``DATCConfig()`` reproduces the
published operating point: 2 kHz clock, 4-bit DAC with 1 V reference,
frames of 100 clocks, weights (0.35, 0.65, 1.0) divided by 2, interval
fractions 0.03..0.48.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..digital.fixed_point import DEFAULT_WEIGHT_FRAC_BITS, FixedWeights
from ..digital.lut import (
    FRAME_SIZES,
    INTERVAL_FRACTION_STEP,
    N_INTERVALS,
)

__all__ = ["ATCConfig", "DATCConfig", "PAPER_CLOCK_HZ"]

PAPER_CLOCK_HZ = 2000.0  # fclk = 2 * fsEMG with fsEMG ~ 1 kHz (Sec. III-C)


@dataclass(frozen=True)
class ATCConfig:
    """Fixed-threshold Average Threshold Crossing (the baseline of [10]).

    Attributes
    ----------
    vth:
        The fixed comparator threshold in volts (the paper evaluates 0.3 V
        and 0.2 V).
    clock_hz:
        Sampling clock of the event generator.  The original ATC is fully
        asynchronous; clocking it at the same 2 kHz as D-ATC makes the
        event-count comparison apples-to-apples, and 2 kHz satisfies
        Nyquist for the ~1 kHz sEMG band.
    symbols_per_event:
        IR-UWB symbols radiated per event: plain ATC sends a single pulse.
    """

    vth: float = 0.3
    clock_hz: float = PAPER_CLOCK_HZ
    symbols_per_event: int = 1

    def __post_init__(self) -> None:
        if self.vth < 0:
            raise ValueError(f"vth must be non-negative, got {self.vth}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.symbols_per_event < 1:
            raise ValueError(
                f"symbols_per_event must be >= 1, got {self.symbols_per_event}"
            )


@dataclass(frozen=True)
class DATCConfig:
    """Dynamic Average Threshold Crossing configuration (paper defaults).

    Attributes
    ----------
    frame_selector:
        Index into ``frame_sizes`` (the 2-bit ``Frame_selector`` input).
    frame_sizes:
        Legal frame lengths in clock cycles; paper: (100, 200, 400, 800).
    clock_hz:
        DTC system clock (paper: 2 kHz).
    dac_bits, vref:
        Threshold DAC resolution and reference (paper: 4 bits, 1 V);
        ``Vth = vref * Set_Vth / 2**dac_bits`` (Eqn. 3).
    weights:
        Predictor weights, **oldest frame first**: (W_F1, W_F2, W_F3) =
        (0.35, 0.65, 1.0).
    weight_divisor:
        Denominator of Listing 1's average (the weights sum to 2).
    interval_step:
        Fraction step of Eqn. (2): level i sits at
        ``interval_step * (i+1) * frame_size``.
    n_levels:
        Number of threshold levels (= DAC codes = 16).
    min_level:
        Floor of the predictor output (Listing 1 never goes below 1).
    initial_level:
        ``Set_Vth`` at reset (unspecified in the paper; mid-scale).
    quantized:
        When True the behavioural encoder uses the exact Q8 integer
        arithmetic of the RTL (bit-for-bit equivalence); when False it
        uses exact float weights (the "Matlab" reference flavour).
    weight_frac_bits:
        Q-format of the quantised weights.
    symbols_per_event:
        D-ATC radiates the event marker plus the 4-bit threshold level:
        5 symbols (Sec. III-B: "3724 x 5 = 18620 event symbols").
    """

    frame_selector: int = 0
    frame_sizes: "tuple[int, ...]" = FRAME_SIZES
    clock_hz: float = PAPER_CLOCK_HZ
    dac_bits: int = 4
    vref: float = 1.0
    weights: "tuple[float, float, float]" = (0.35, 0.65, 1.0)
    weight_divisor: float = 2.0
    interval_step: float = INTERVAL_FRACTION_STEP
    n_levels: int = N_INTERVALS
    min_level: int = 1
    initial_level: int = 8
    quantized: bool = False
    weight_frac_bits: int = DEFAULT_WEIGHT_FRAC_BITS
    symbols_per_event: int = field(default=0)  # 0 -> derived: 1 + dac_bits

    def __post_init__(self) -> None:
        if not self.frame_sizes:
            raise ValueError("frame_sizes must not be empty")
        if any(f < 1 for f in self.frame_sizes):
            raise ValueError(f"frame sizes must be >= 1, got {self.frame_sizes}")
        if not 0 <= self.frame_selector < len(self.frame_sizes):
            raise ValueError(
                f"frame_selector {self.frame_selector} out of range "
                f"[0, {len(self.frame_sizes)})"
            )
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.dac_bits < 1:
            raise ValueError(f"dac_bits must be >= 1, got {self.dac_bits}")
        if self.vref <= 0:
            raise ValueError(f"vref must be positive, got {self.vref}")
        if len(self.weights) != 3:
            raise ValueError(f"exactly three weights required, got {self.weights}")
        if any(w < 0 for w in self.weights):
            raise ValueError(f"weights must be non-negative, got {self.weights}")
        if self.weight_divisor <= 0:
            raise ValueError(f"weight_divisor must be positive, got {self.weight_divisor}")
        if self.interval_step <= 0:
            raise ValueError(f"interval_step must be positive, got {self.interval_step}")
        if self.n_levels != (1 << self.dac_bits):
            raise ValueError(
                f"n_levels ({self.n_levels}) must equal 2**dac_bits "
                f"({1 << self.dac_bits}); the predictor output drives the DAC directly"
            )
        if not 0 <= self.min_level < self.n_levels:
            raise ValueError(
                f"min_level {self.min_level} out of range [0, {self.n_levels})"
            )
        if not self.min_level <= self.initial_level < self.n_levels:
            raise ValueError(
                f"initial_level {self.initial_level} out of range "
                f"[{self.min_level}, {self.n_levels})"
            )
        if self.symbols_per_event == 0:
            object.__setattr__(self, "symbols_per_event", 1 + self.dac_bits)
        elif self.symbols_per_event < 1:
            raise ValueError(
                f"symbols_per_event must be >= 1, got {self.symbols_per_event}"
            )

    @property
    def frame_size(self) -> int:
        """Selected frame length in clock cycles."""
        return self.frame_sizes[self.frame_selector]

    @property
    def frame_duration_s(self) -> float:
        """Frame length in seconds."""
        return self.frame_size / self.clock_hz

    @property
    def lsb_v(self) -> float:
        """DAC threshold step (Eqn. 3): vref / 2**dac_bits."""
        return self.vref / float(1 << self.dac_bits)

    def level_to_voltage(self, level: "int | float") -> float:
        """Paper Eqn. (3): DAC output voltage for a threshold level."""
        return self.vref * float(level) / float(1 << self.dac_bits)

    def fixed_weights(self) -> FixedWeights:
        """The quantised (RTL) form of the predictor weights."""
        return FixedWeights.from_floats(self.weights, self.weight_frac_bits)
