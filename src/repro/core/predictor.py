"""The D-ATC Predictor: frame-history weighted average -> threshold level.

Implements paper Eqn. (1) / Listing 1 as a small stateful object shared by
the behavioural encoder.  Two arithmetic flavours:

* **float** — the exact weighted average of the Matlab reference,
  ``AVR = (W_F3*N3 + W_F2*N2 + W_F1*N1) / weight_divisor``;
* **quantized** — the Q8 integer datapath of the synthesized RTL
  (identical to :class:`repro.digital.dtc_rtl.DTCRtl`).

The history update ``N_one1 <- N_one2 <- N_one3`` happens inside
:meth:`ThresholdPredictor.update`.
"""

from __future__ import annotations

import numpy as np

from ..digital.fixed_point import FixedWeights
from .config import DATCConfig
from .intervals import interval_levels_float, select_level

__all__ = ["ThresholdPredictor"]


class ThresholdPredictor:
    """Stateful per-frame threshold-level predictor.

    Parameters
    ----------
    config:
        The D-ATC configuration (weights, intervals, levels, arithmetic
        flavour all come from it).
    """

    def __init__(self, config: DATCConfig):
        self.config = config
        self._weights = config.weights
        self._divisor = config.weight_divisor
        self._fixed: "FixedWeights | None" = (
            config.fixed_weights() if config.quantized else None
        )
        if config.quantized:
            self._levels = tuple(
                int(round(v))
                for v in interval_levels_float(
                    config.frame_size, config.n_levels, config.interval_step
                )
            )
        else:
            self._levels = interval_levels_float(
                config.frame_size, config.n_levels, config.interval_step
            )
        # History of per-frame ones counts, oldest first: (N_one1, N_one2).
        # N_one3 is supplied to update() as the just-finished frame.
        self._n_one1 = 0
        self._n_one2 = 0
        self._level = config.initial_level

    @property
    def level(self) -> int:
        """The current threshold level (``Set_Vth``)."""
        return self._level

    @property
    def interval_ladder(self) -> "tuple[float, ...] | tuple[int, ...] | np.ndarray":
        """The ascending Eqn. (2) interval ladder this predictor selects from.

        Integers in quantized mode, floats otherwise.  Shared with the
        row-vectorised batch predictor so both select levels from the
        identical ladder.
        """
        return self._levels

    @property
    def vth(self) -> float:
        """The current threshold voltage (Eqn. 3)."""
        return self.config.level_to_voltage(self._level)

    @property
    def history(self) -> "tuple[int, int]":
        """(N_one1, N_one2): the two retained previous-frame counts."""
        return (self._n_one1, self._n_one2)

    def average(self, n_one3: int) -> float:
        """Eqn. (1) weighted average with the just-finished frame count."""
        if n_one3 < 0 or n_one3 > self.config.frame_size:
            raise ValueError(
                f"n_one3 must be within [0, frame_size={self.config.frame_size}], "
                f"got {n_one3}"
            )
        if self._fixed is not None:
            return float(self._fixed.average(self._n_one1, self._n_one2, n_one3))
        w1, w2, w3 = self._weights
        return (w3 * n_one3 + w2 * self._n_one2 + w1 * self._n_one1) / self._divisor

    def update(self, n_one3: int) -> int:
        """End-of-frame step: compute AVR, pick the level, shift history.

        Returns the new ``Set_Vth`` level, which applies from the first
        clock of the next frame.
        """
        avr = self.average(n_one3)
        self._level = select_level(avr, self._levels, self.config.min_level)
        self._n_one1 = self._n_one2
        self._n_one2 = int(n_one3)
        return self._level

    def reset(self) -> None:
        """Return to the reset state (history cleared, initial level)."""
        self._n_one1 = 0
        self._n_one2 = 0
        self._level = self.config.initial_level

    def steady_state_level(self, duty: float) -> int:
        """Level the predictor converges to for a constant duty cycle.

        For a stationary input with fraction ``duty`` of ones per frame
        the weighted average equals ``duty * frame_size`` (the weights sum
        to ``weight_divisor``), so convergence is a pure Eqn. (2) lookup.
        Used by convergence tests and the design-space benches.
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be within [0, 1], got {duty}")
        n = duty * self.config.frame_size
        levels = np.asarray(self._levels, dtype=float)
        return select_level(float(n), levels, self.config.min_level)
