"""Streaming & batched encoder engine for ATC and D-ATC.

The paper's transmitter is an always-on device: samples arrive forever and
events leave as they happen.  This module provides the incremental
counterpart of the one-shot :func:`repro.core.atc.atc_encode` /
:func:`repro.core.datc.datc_encode` functions (which are now thin wrappers
over it), plus a batched 2-D path for encoding many signals at once.

Streaming
---------
A :class:`StreamingEncoder` consumes a signal in arbitrary chunks::

    enc = DATCEncoder(fs=2500.0)
    for chunk in chunks:              # any sizes, including empty
        events = enc.push(chunk)      # EventStream of newly fired events
    trace = enc.finalize()            # full diagnostic trace
    stream = enc.stream               # all events, same as one-shot

Chunked output is **bit-identical** to the one-shot path for any chunking:
the encoder carries the comparator state (hysteresis flop), the partial
frame's clock-sampled values, the DTC ones counts and the predictor history
across chunk boundaries, and resumes the clock-edge resampling sequence
(:func:`repro.digital.synchronizer.clock_sample_indices`) mid-signal.
Noisy comparisons also match because ``numpy.random.Generator`` draws are
sequential: the per-chunk (ATC) / per-frame (D-ATC) draw layout consumes
the generator exactly as the one-shot call does.

The *working set* is O(chunk + frame): only the dense samples a future
clock edge can still capture are retained.  The accumulated outputs — the
diagnostic trace (one entry per clock) and the event history — grow with
runtime like any recording does; a truly open-ended deployment should
drain events from ``push()`` and periodically rotate encoders at a frame
boundary rather than keep one trace forever.

Batching
--------
:func:`encode_batch` encodes an ``(n_signals, n_samples)`` array in one
call: ATC is fully vectorised (one comparison over the whole matrix);
D-ATC is frame-vectorised **across the signal axis** — one
:class:`~repro.core.predictor.ThresholdPredictor` per row, with each
frame's comparison and ones count computed for all rows in single numpy
ops.  Per-row results are bit-identical to the per-signal loop.  The
batched paths model ideal comparison only (non-ideal comparators and DACs
stay on the 1-D paths).
"""

from __future__ import annotations

import numpy as np

from ..analog.comparator import Comparator
from ..analog.dac import DAC
from ..digital.synchronizer import clock_sample_indices, n_whole_clocks
from ..kernels.dispatch import get_kernel, register_kernel
from .atc import ATCTrace, rising_edges, rising_edges_2d
from .config import ATCConfig, DATCConfig
from .datc import DATCTrace
from .events import EventStream
from .predictor import ThresholdPredictor

__all__ = [
    "StreamingEncoder",
    "ATCEncoder",
    "DATCEncoder",
    "encode_batch",
    "atc_encode_batch",
    "datc_encode_batch",
]


class _GrowBuffer:
    """Append-only 1-D array with doubling capacity (amortised-O(1) append).

    ``StreamingEncoder`` accumulates per-clock and per-event history for
    the lifetime of a session.  A list-of-chunks representation would make
    every ``drain()``/``stream`` call re-concatenate the whole history —
    O(n²) over a long-lived session.  The grow buffer keeps the history
    flat: appends are amortised O(1) and reads are O(1) slice views (the
    prefix is written once and never mutated, so views stay valid across
    later appends).
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, dtype) -> None:
        self._buf = np.zeros(16, dtype=dtype)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def append(self, values: np.ndarray) -> None:
        n = len(values)
        if n == 0:
            return
        need = self._len + n
        if need > self._buf.size:
            cap = self._buf.size
            while cap < need:
                cap *= 2
            grown = np.zeros(cap, dtype=self._buf.dtype)
            grown[: self._len] = self._buf[: self._len]
            self._buf = grown
        self._buf[self._len : need] = values
        self._len = need

    def view(self) -> np.ndarray:
        """The accumulated values so far (O(1), no copy)."""
        return self._buf[: self._len]


class StreamingEncoder:
    """Base class for incremental threshold-crossing encoders.

    Subclasses implement :meth:`push` (consume a chunk, return the newly
    fired events) and :meth:`finalize` (flush pending state, return the
    diagnostic trace).  The base class owns the sample/clock bookkeeping:
    a rolling tail of dense samples, the resumable clock-edge resampler,
    and the accumulated event indices.

    Parameters
    ----------
    fs:
        Input sampling rate in Hz (dataset rate, e.g. 2500 Hz).
    config:
        The encoder operating point (``ATCConfig`` or ``DATCConfig``).
    rectify:
        Full-wave rectify each chunk before thresholding.
    tail_dtype:
        Element type of the retained dense tail (bits for ATC, raw sample
        values for D-ATC).
    """

    def __init__(self, fs: float, config, rectify: bool, tail_dtype) -> None:
        if fs <= 0:
            raise ValueError(f"fs must be positive, got {fs}")
        self.fs = fs
        self.config = config
        self.rectify = rectify
        self._n_samples = 0
        self._n_clocks_sampled = 0
        self._tail = np.zeros(0, dtype=tail_dtype)
        self._tail_offset = 0
        self._n_clocks_emitted = 0
        self._last_bit = 0
        self._event_idx_buf = _GrowBuffer(np.int64)
        self._d_in_buf = _GrowBuffer(np.uint8)
        self._n_drained = 0  # events already handed out by push()/drain()
        self._finalized = False

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        """The event-generator clock."""
        return self.config.clock_hz

    @property
    def n_samples(self) -> int:
        """Total input samples consumed so far."""
        return self._n_samples

    @property
    def n_clocks(self) -> int:
        """Clock cycles emitted into the output trace so far."""
        return self._n_clocks_emitted

    @property
    def duration_s(self) -> float:
        """Signal time covered by the samples consumed so far."""
        return self._n_samples / self.fs

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has run (no more pushes accepted)."""
        return self._finalized

    def _check_chunk(self, chunk: np.ndarray) -> np.ndarray:
        if self._finalized:
            raise RuntimeError("push() called after finalize()")
        x = np.asarray(chunk, dtype=float)
        if x.ndim != 1:
            raise ValueError(f"chunk must be 1-D, got shape {x.shape}")
        return np.abs(x) if self.rectify else x

    def _advance(self, dense: np.ndarray) -> np.ndarray:
        """Append dense samples, return the newly capturable clock values.

        Keeps only the tail a future clock edge can still reach, so a
        forever-running encoder uses bounded memory.
        """
        if dense.size:
            self._tail = (
                np.concatenate([self._tail, dense]) if self._tail.size else dense
            )
            self._n_samples += dense.size
        total = n_whole_clocks(self._n_samples, self.fs, self.clock_hz)
        n_new = total - self._n_clocks_sampled
        if n_new <= 0:
            return self._tail[:0]
        idx = clock_sample_indices(
            self._n_samples,
            self.fs,
            self.clock_hz,
            n_clocks=n_new,
            start_clock=self._n_clocks_sampled,
        )
        sampled = self._tail[idx - self._tail_offset]
        self._n_clocks_sampled = total
        # Edge total+1 is the earliest future capture point; nothing before
        # it can be read again.
        next_idx = int(np.ceil((total + 1) * (self.fs / self.clock_hz) - 1e-9)) - 1
        drop = min(max(next_idx - self._tail_offset, 0), self._tail.size)
        if drop > 0:
            self._tail = self._tail[drop:]
            self._tail_offset += drop
        return sampled

    def _emit_bits(self, bits: np.ndarray) -> np.ndarray:
        """Append clocked bits to the trace; return global event indices."""
        if not bits.size:
            return np.zeros(0, dtype=np.int64)
        global_idx = rising_edges(bits, initial=self._last_bit) + self._n_clocks_emitted
        self._d_in_buf.append(bits)
        self._event_idx_buf.append(global_idx)
        self._last_bit = int(bits[-1])
        self._n_clocks_emitted += bits.size
        return global_idx

    def _event_indices(self) -> np.ndarray:
        return self._event_idx_buf.view()

    def _d_in(self) -> np.ndarray:
        return self._d_in_buf.view()

    def _require_clocks(self) -> None:
        if self._n_clocks_sampled == 0:
            raise ValueError(
                f"signal too short: {self._n_samples} samples at {self.fs} Hz "
                f"covers no {self.clock_hz} Hz clock period"
            )

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def push(self, chunk: np.ndarray) -> EventStream:
        """Consume a chunk; return the events it caused (absolute times)."""
        raise NotImplementedError

    def finalize(self):
        """Flush pending state; return the diagnostic trace."""
        raise NotImplementedError

    def drain(self) -> EventStream:
        """Events fired since the last ``push``/``drain``, incrementally.

        ``finalize`` can fire events that no ``push`` returned — D-ATC's
        trailing partial frame is compared (events fire) without updating
        the DTC.  A live receiver must see them too, so the full chunked
        sequence is ``push* -> finalize -> drain``; see
        :class:`repro.rx.decoders.StreamingDecoder`.  Draining with
        nothing outstanding returns an empty stream.
        """
        idx = self._event_indices()[self._n_drained :]
        levels = self._event_levels()
        if levels is not None:
            levels = levels[self._n_drained :]
        return self._incremental_stream(idx, levels)

    @property
    def stream(self) -> EventStream:
        """All events fired so far, as a single one-shot-equivalent stream."""
        idx = self._event_indices()
        return EventStream(
            times=(idx + 1) / self.clock_hz,
            duration_s=self.duration_s,
            levels=self._event_levels(),
            clock_hz=self.clock_hz,
            symbols_per_event=self.config.symbols_per_event,
        )

    def _event_levels(self) -> "np.ndarray | None":
        return None

    def _incremental_stream(
        self, idx: np.ndarray, levels: "np.ndarray | None"
    ) -> EventStream:
        self._n_drained += idx.size
        return EventStream(
            times=(idx + 1) / self.clock_hz,
            duration_s=self.duration_s,
            levels=levels,
            clock_hz=self.clock_hz,
            symbols_per_event=self.config.symbols_per_event,
        )


class ATCEncoder(StreamingEncoder):
    """Incremental fixed-threshold ATC (streaming form of ``atc_encode``).

    The comparator runs on the dense input chunk as it arrives (carrying
    the hysteresis flop state across chunks), and the resulting dense bit
    stream is resampled at the 2 kHz clock as whole clock periods become
    available.

    Parameters match :func:`repro.core.atc.atc_encode`.
    """

    def __init__(
        self,
        fs: float,
        config: "ATCConfig | None" = None,
        comparator: "Comparator | None" = None,
        rectify: bool = True,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        super().__init__(
            fs,
            config if config is not None else ATCConfig(),
            rectify,
            tail_dtype=np.uint8,
        )
        self.comparator = comparator
        self.rng = rng
        self._comp_state = 0

    def push(self, chunk: np.ndarray) -> EventStream:
        """Consume a chunk of the dense signal; return new events."""
        x = self._check_chunk(chunk)
        if x.size == 0:
            bits = np.zeros(0, dtype=np.uint8)
        elif self.comparator is None:
            bits = (x > self.config.vth).astype(np.uint8)
        else:
            bits = self.comparator.compare(
                x, self.config.vth, rng=self.rng, initial_state=self._comp_state
            )
            self._comp_state = int(bits[-1])
        d_new = self._advance(bits)
        idx = self._emit_bits(d_new)
        return self._incremental_stream(idx, None)

    def finalize(self) -> ATCTrace:
        """Close the stream; return the trace (raises on a clockless run)."""
        if self._finalized:
            raise RuntimeError("finalize() called twice")
        self._finalized = True
        self._require_clocks()
        return ATCTrace(
            d_in=self._d_in(), vth=self.config.vth, clock_hz=self.clock_hz
        )


class DATCEncoder(StreamingEncoder):
    """Incremental D-ATC (streaming form of ``datc_encode``).

    Chunks are rectified and clock-resampled on arrival; the clocked
    values accumulate into the current frame, and every *completed* frame
    is compared against the predictor's threshold, counted by the DTC and
    fed back through the predictor — exactly the Fig. 1 loop, one frame at
    a time.  A trailing partial frame is compared (events still fire) but
    never updates the DTC, matching the one-shot semantics; it is flushed
    by :meth:`finalize`.

    Parameters match :func:`repro.core.datc.datc_encode`.
    """

    def __init__(
        self,
        fs: float,
        config: "DATCConfig | None" = None,
        comparator: "Comparator | None" = None,
        dac: "DAC | None" = None,
        rectify: bool = True,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        config = config if config is not None else DATCConfig()
        super().__init__(fs, config, rectify, tail_dtype=float)
        if dac is not None and dac.n_bits != config.dac_bits:
            raise ValueError(
                f"dac.n_bits ({dac.n_bits}) must match config.dac_bits "
                f"({config.dac_bits})"
            )
        self.comparator = comparator
        self.dac = dac
        self.rng = rng
        self._predictor = ThresholdPredictor(config)
        self._comp_state = 0
        self._frame_buf = np.zeros(0, dtype=float)
        self._level_buf = _GrowBuffer(np.int64)
        self._vth_buf = _GrowBuffer(float)
        self._event_level_buf = _GrowBuffer(np.int64)
        self._frame_levels: "list[int]" = []
        self._frame_ones: "list[int]" = []
        self._frame_avr: "list[float]" = []

    @property
    def predictor(self) -> ThresholdPredictor:
        """The live threshold predictor (its level applies to the next frame)."""
        return self._predictor

    def _process_frame(
        self, segment: np.ndarray, complete: bool
    ) -> "tuple[np.ndarray, np.ndarray]":
        level = self._predictor.level
        vth = (
            self.dac.to_voltage(level)
            if self.dac is not None
            else self.config.level_to_voltage(level)
        )
        if self.comparator is None:
            bits = (segment > vth).astype(np.uint8)
        else:
            bits = self.comparator.compare(
                segment, vth, rng=self.rng, initial_state=self._comp_state
            )
            self._comp_state = int(bits[-1]) if bits.size else self._comp_state
        idx = self._emit_bits(bits)
        event_levels = np.full(idx.size, level, dtype=np.int64)
        self._level_buf.append(np.full(bits.size, level, dtype=np.int64))
        self._vth_buf.append(np.full(bits.size, vth, dtype=float))
        self._event_level_buf.append(event_levels)
        if complete:  # only completed frames update the DTC
            n_one = int(bits.sum())
            self._frame_avr.append(self._predictor.average(n_one))
            self._predictor.update(n_one)
            self._frame_ones.append(n_one)
            self._frame_levels.append(self._predictor.level)
        return idx, event_levels

    def push(self, chunk: np.ndarray) -> EventStream:
        """Consume a chunk of the dense signal; return new events."""
        x = self._check_chunk(chunk)
        x_clk = self._advance(x)
        if x_clk.size:
            self._frame_buf = (
                np.concatenate([self._frame_buf, x_clk])
                if self._frame_buf.size
                else x_clk
            )
        frame_size = self.config.frame_size
        idx_parts = []
        level_parts = []
        while self._frame_buf.size >= frame_size:
            segment = self._frame_buf[:frame_size]
            self._frame_buf = self._frame_buf[frame_size:]
            idx, event_levels = self._process_frame(segment, complete=True)
            idx_parts.append(idx)
            level_parts.append(event_levels)
        if idx_parts:
            idx = np.concatenate(idx_parts)
            levels = np.concatenate(level_parts)
        else:
            idx = np.zeros(0, dtype=np.int64)
            levels = np.zeros(0, dtype=np.int64)
        return self._incremental_stream(idx, levels)

    def finalize(self) -> DATCTrace:
        """Flush the trailing partial frame; return the full trace."""
        if self._finalized:
            raise RuntimeError("finalize() called twice")
        self._finalized = True
        self._require_clocks()
        if self._frame_buf.size:
            self._process_frame(self._frame_buf, complete=False)
            self._frame_buf = self._frame_buf[:0]
        return DATCTrace(
            d_in=self._d_in(),
            levels=self._levels_per_clock(),
            vth=self._vth_per_clock(),
            frame_levels=np.asarray(self._frame_levels, dtype=np.int64),
            frame_ones=np.asarray(self._frame_ones, dtype=np.int64),
            frame_avr=np.asarray(self._frame_avr, dtype=float),
            clock_hz=self.clock_hz,
            frame_size=self.config.frame_size,
        )

    def _levels_per_clock(self) -> np.ndarray:
        return self._level_buf.view()

    def _vth_per_clock(self) -> np.ndarray:
        return self._vth_buf.view()

    def _event_levels(self) -> "np.ndarray | None":
        return self._event_level_buf.view()


# ----------------------------------------------------------------------
# Batched 2-D paths
# ----------------------------------------------------------------------
class _BatchPredictor:
    """Row-vectorised :class:`ThresholdPredictor`: one history per row.

    Each row's arithmetic is bit-identical to a scalar predictor —
    identical IEEE ops for the float flavour, identical integer shift for
    the quantized (RTL) flavour, and the Listing 1 priority encoder
    becomes a ``searchsorted`` on the shared ascending interval ladder.
    """

    def __init__(self, config: DATCConfig, n_rows: int) -> None:
        self._ladder = np.asarray(ThresholdPredictor(config).interval_ladder)
        self._min_level = config.min_level
        self._weights = config.weights
        self._divisor = config.weight_divisor
        self._fixed = config.fixed_weights() if config.quantized else None
        self._n_one1 = np.zeros(n_rows, dtype=np.int64)
        self._n_one2 = np.zeros(n_rows, dtype=np.int64)
        self.level = np.full(n_rows, config.initial_level, dtype=np.int64)

    def average(self, n_one3: np.ndarray) -> np.ndarray:
        """Eqn. (1) weighted average per row (float64)."""
        if self._fixed is not None:
            f = self._fixed
            acc = f.w3 * n_one3 + f.w2 * self._n_one2 + f.w1 * self._n_one1
            return (acc >> f.shift).astype(float)
        w1, w2, w3 = self._weights
        return (w3 * n_one3 + w2 * self._n_one2 + w1 * self._n_one1) / self._divisor

    def update(self, n_one3: np.ndarray) -> np.ndarray:
        """End-of-frame step for every row; returns the pre-update AVRs."""
        avr = self.average(n_one3)
        idx = np.searchsorted(self._ladder, avr, side="right") - 1
        self.level = np.maximum(idx, self._min_level).astype(np.int64)
        self._n_one1 = self._n_one2
        self._n_one2 = n_one3.astype(np.int64)
        return avr


def _as_batch(signals) -> np.ndarray:
    """Coerce a 2-D array or a list of equal-length 1-D arrays to (n, m)."""
    if isinstance(signals, np.ndarray):
        x = np.asarray(signals, dtype=float)
        if x.ndim != 2:
            raise ValueError(
                f"signals array must be 2-D (n_signals, n_samples), got shape {x.shape}"
            )
        return x
    rows = [np.asarray(s, dtype=float) for s in signals]
    if not rows:
        raise ValueError("need at least one signal")
    for i, r in enumerate(rows):
        if r.ndim != 1:
            raise ValueError(f"signal {i} must be 1-D, got shape {r.shape}")
    lengths = {r.size for r in rows}
    if len(lengths) > 1:
        raise ValueError(
            "all signals must share the same length, got lengths "
            f"{sorted(r.size for r in rows)}"
        )
    return np.stack(rows)


def _check_batch_fs(n_samples: int, fs: float, clock_hz: float) -> int:
    if fs <= 0:
        raise ValueError(f"fs must be positive, got {fs}")
    n_clocks = n_whole_clocks(n_samples, fs, clock_hz)
    if n_clocks == 0:
        raise ValueError(
            f"signal too short: {n_samples} samples at {fs} Hz covers no "
            f"{clock_hz} Hz clock period"
        )
    return n_clocks


def atc_encode_batch(
    signals,
    fs: float,
    config: "ATCConfig | None" = None,
    rectify: bool = True,
) -> "list[tuple[EventStream, ATCTrace]]":
    """Fixed-threshold ATC over an ``(n_signals, n_samples)`` batch.

    Fully vectorised: one comparison over the whole matrix, one shared
    clock-edge gather, one batched edge detection.  Each row's
    ``(EventStream, ATCTrace)`` is bit-identical to ``atc_encode`` on that
    row.
    """
    config = config if config is not None else ATCConfig()
    x = _as_batch(signals)
    if rectify:
        x = np.abs(x)
    n_signals, n_samples = x.shape
    n_clocks = _check_batch_fs(n_samples, fs, config.clock_hz)
    duration = n_samples / fs

    dense_bits = (x > config.vth).astype(np.uint8)
    edge_idx = clock_sample_indices(n_samples, fs, config.clock_hz, n_clocks=n_clocks)
    d_in = dense_bits[:, edge_idx]
    edge_mask = rising_edges_2d(d_in)

    out = []
    for r in range(n_signals):
        idx = np.flatnonzero(edge_mask[r])
        stream = EventStream(
            times=(idx + 1) / config.clock_hz,
            duration_s=duration,
            levels=None,
            clock_hz=config.clock_hz,
            symbols_per_event=config.symbols_per_event,
        )
        trace = ATCTrace(d_in=d_in[r], vth=config.vth, clock_hz=config.clock_hz)
        out.append((stream, trace))
    return out


@register_kernel("datc_frames", "numpy")
def _datc_frames_numpy(x_clk: np.ndarray, config: DATCConfig):
    """The frame-vectorised D-ATC scan: the ``datc_encode_batch`` hot loop.

    One Python iteration per frame, each a handful of whole-batch numpy
    ops driving a :class:`_BatchPredictor`.  This is the numpy flavour of
    the ``"datc_frames"`` kernel; the compiled tier
    (:mod:`repro.kernels.datc`) fuses the same sequence into a single
    jitted pass and is gated by exact equality against this function.
    Returns ``(d_in, levels, vth, frame_levels, frame_ones, frame_avr)``.
    """
    n_signals, n_clocks = x_clk.shape
    predictor = _BatchPredictor(config, n_signals)
    frame_size = config.frame_size
    lsb_inv = float(1 << config.dac_bits)
    d_in = np.empty((n_signals, n_clocks), dtype=np.uint8)
    levels = np.empty((n_signals, n_clocks), dtype=np.int64)
    vth_per_clock = np.empty((n_signals, n_clocks), dtype=float)
    frame_levels: "list[np.ndarray]" = []
    frame_ones: "list[np.ndarray]" = []
    frame_avr: "list[np.ndarray]" = []

    n_frames_total = -(-n_clocks // frame_size)  # ceil division
    for f in range(n_frames_total):
        k0 = f * frame_size
        k1 = min(k0 + frame_size, n_clocks)
        lv = predictor.level
        # Vectorised Eqn. (3): same (vref * level) / 2**Nb op order as the
        # scalar path, so the voltages are bit-identical per row.
        vth = config.vref * lv.astype(float) / lsb_inv
        bits = x_clk[:, k0:k1] > vth[:, None]
        d_in[:, k0:k1] = bits
        levels[:, k0:k1] = lv[:, None]
        vth_per_clock[:, k0:k1] = vth[:, None]

        if k1 - k0 == frame_size:  # only completed frames update the DTCs
            ones = bits.sum(axis=1)
            frame_avr.append(predictor.update(ones))
            frame_ones.append(ones)
            frame_levels.append(predictor.level)

    n_frames = len(frame_ones)
    frame_avr_m = (
        np.stack(frame_avr, axis=1) if n_frames else np.zeros((n_signals, 0))
    )
    frame_ones_m = (
        np.stack(frame_ones, axis=1)
        if n_frames
        else np.zeros((n_signals, 0), dtype=np.int64)
    )
    frame_levels_m = (
        np.stack(frame_levels, axis=1)
        if n_frames
        else np.zeros((n_signals, 0), dtype=np.int64)
    )
    return d_in, levels, vth_per_clock, frame_levels_m, frame_ones_m, frame_avr_m


def datc_encode_batch(
    signals,
    fs: float,
    config: "DATCConfig | None" = None,
    rectify: bool = True,
) -> "list[tuple[EventStream, DATCTrace]]":
    """D-ATC over an ``(n_signals, n_samples)`` batch.

    Frame-vectorised across the signal axis: each frame's comparison and
    DTC ones count run as single numpy ops over all rows, with one
    independent :class:`ThresholdPredictor` per row (the per-channel DTC
    instances of the multi-channel systems).  The Python-level loop runs
    ``n_frames`` times instead of ``n_signals * n_frames`` — the hot path
    of dataset sweeps and multi-channel encoding.  Per-row results are
    bit-identical to ``datc_encode``.

    The frame scan dispatches through the kernel registry
    (:mod:`repro.kernels`): under ``use_backend("compiled")`` the whole
    per-frame sequence runs as one numba-jitted pass with identical
    (bit-exact) results.
    """
    config = config if config is not None else DATCConfig()
    x = _as_batch(signals)
    if rectify:
        x = np.abs(x)
    n_signals, n_samples = x.shape
    n_clocks = _check_batch_fs(n_samples, fs, config.clock_hz)
    duration = n_samples / fs

    edge_idx = clock_sample_indices(n_samples, fs, config.clock_hz, n_clocks=n_clocks)
    x_clk = x[:, edge_idx]

    frame_size = config.frame_size
    (
        d_in,
        levels,
        vth_per_clock,
        frame_levels_m,
        frame_ones_m,
        frame_avr_m,
    ) = get_kernel("datc_frames")(x_clk, config)
    edge_mask = rising_edges_2d(d_in)

    out = []
    for r in range(n_signals):
        idx = np.flatnonzero(edge_mask[r])
        stream = EventStream(
            times=(idx + 1) / config.clock_hz,
            duration_s=duration,
            levels=levels[r, idx],
            clock_hz=config.clock_hz,
            symbols_per_event=config.symbols_per_event,
        )
        trace = DATCTrace(
            d_in=d_in[r],
            levels=levels[r],
            vth=vth_per_clock[r],
            frame_levels=frame_levels_m[r],
            frame_ones=frame_ones_m[r],
            frame_avr=frame_avr_m[r],
            clock_hz=config.clock_hz,
            frame_size=frame_size,
        )
        out.append((stream, trace))
    return out


def encode_batch(
    signals,
    fs: float,
    config: "ATCConfig | DATCConfig | None" = None,
    rectify: bool = True,
) -> "list[tuple[EventStream, ATCTrace | DATCTrace]]":
    """Encode a batch of signals, dispatching on the config type.

    ``config=None`` defaults to the paper's D-ATC operating point.  Returns
    one ``(EventStream, trace)`` pair per row, in row order.
    """
    if config is None or isinstance(config, DATCConfig):
        return datc_encode_batch(signals, fs, config, rectify=rectify)
    if isinstance(config, ATCConfig):
        return atc_encode_batch(signals, fs, config, rectify=rectify)
    raise TypeError(
        f"config must be ATCConfig, DATCConfig or None, got {type(config).__name__}"
    )
