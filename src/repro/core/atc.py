"""Fixed-threshold Average Threshold Crossing (ATC) — the baseline of [10].

An IR-UWB pulse is radiated at every positive-edge crossing of a *fixed*
threshold ``Vth`` by the rectified, amplified sEMG signal.  The average
pulse rate is proportional to the exerted muscle force, which the receiver
recovers with simple windowing.  Its weakness — the reason D-ATC exists —
is that ``Vth`` must be trimmed per subject: too high and low-amplitude
signals are never sensed, too low and the event (hence power) budget
explodes.

Streaming & batching
--------------------
:func:`atc_encode` is a thin wrapper over the incremental
:class:`repro.core.encoders.ATCEncoder` — feed an ``ATCEncoder`` arbitrary
chunks via ``push()`` for live sources, with bit-identical output.  To
encode many equal-length signals at once, use
:func:`repro.core.encoders.atc_encode_batch` (fully vectorised across the
signal axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analog.comparator import Comparator
from .config import ATCConfig
from .events import EventStream

__all__ = ["ATCTrace", "atc_encode", "rising_edges", "rising_edges_2d"]


def rising_edges(bits: np.ndarray, initial: int = 0) -> np.ndarray:
    """Indices where a {0,1} stream transitions 0 -> 1.

    ``initial`` is the state before the first sample (reset value of the
    comparator flop).
    """
    bits = np.asarray(bits).astype(np.int8)
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    prev = np.concatenate([[1 if initial else 0], bits[:-1]])
    return np.flatnonzero((bits == 1) & (prev == 0))


def rising_edges_2d(bits: np.ndarray, initial: int = 0) -> np.ndarray:
    """Row-wise 0 -> 1 transition mask for a 2-D ``(n_signals, n)`` matrix.

    The batched counterpart of :func:`rising_edges` (same convention,
    same ``initial`` comparator-flop reset state, applied per row).
    Returns a boolean mask; per-row event indices are
    ``np.flatnonzero(mask[r])``.
    """
    bits = np.asarray(bits).astype(np.int8)
    if bits.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {bits.shape}")
    first = np.full((bits.shape[0], 1), 1 if initial else 0, dtype=np.int8)
    prev = np.concatenate([first, bits[:, :-1]], axis=1)
    return (bits == 1) & (prev == 0)


@dataclass(frozen=True)
class ATCTrace:
    """Diagnostic trace of an ATC encoding run."""

    d_in: np.ndarray  # clock-sampled comparator output, uint8
    vth: float
    clock_hz: float

    @property
    def n_clocks(self) -> int:
        """Number of clock cycles simulated."""
        return int(self.d_in.size)

    @property
    def duty_cycle(self) -> float:
        """Fraction of clock cycles with the signal above threshold."""
        if self.d_in.size == 0:
            return 0.0
        return float(np.mean(self.d_in))


def atc_encode(
    signal: np.ndarray,
    fs: float,
    config: "ATCConfig | None" = None,
    comparator: "Comparator | None" = None,
    rectify: bool = True,
    rng: "np.random.Generator | None" = None,
) -> "tuple[EventStream, ATCTrace]":
    """Encode a signal as fixed-threshold crossing events.

    Parameters
    ----------
    signal:
        The amplified sEMG trace (signed volts when ``rectify``, already
        rectified otherwise), sampled at ``fs``.
    fs:
        Input sampling rate in Hz (dataset rate, e.g. 2500 Hz).
    config:
        Threshold and clock; defaults to the paper's ``Vth = 0.3 V`` at
        2 kHz.
    comparator:
        Optional non-ideal comparator; ``None`` means ideal comparison.
    rectify:
        Apply full-wave rectification before comparison (the front-end of
        Fig. 1 compares the rectified envelope side of the signal).
    rng:
        Randomness source for a noisy comparator.

    Returns
    -------
    (EventStream, ATCTrace)
        The event stream (1 symbol per event) and the diagnostic trace.
    """
    from .encoders import ATCEncoder  # deferred: encoders imports this module

    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    encoder = ATCEncoder(fs, config, comparator=comparator, rectify=rectify, rng=rng)
    encoder.push(x)
    trace = encoder.finalize()
    return encoder.stream, trace
