"""Fixed-threshold Average Threshold Crossing (ATC) — the baseline of [10].

An IR-UWB pulse is radiated at every positive-edge crossing of a *fixed*
threshold ``Vth`` by the rectified, amplified sEMG signal.  The average
pulse rate is proportional to the exerted muscle force, which the receiver
recovers with simple windowing.  Its weakness — the reason D-ATC exists —
is that ``Vth`` must be trimmed per subject: too high and low-amplitude
signals are never sensed, too low and the event (hence power) budget
explodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analog.comparator import Comparator
from .config import ATCConfig
from .events import EventStream

__all__ = ["ATCTrace", "atc_encode", "rising_edges"]


def rising_edges(bits: np.ndarray, initial: int = 0) -> np.ndarray:
    """Indices where a {0,1} stream transitions 0 -> 1.

    ``initial`` is the state before the first sample (reset value of the
    comparator flop).
    """
    bits = np.asarray(bits).astype(np.int8)
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    prev = np.concatenate([[1 if initial else 0], bits[:-1]])
    return np.flatnonzero((bits == 1) & (prev == 0))


@dataclass(frozen=True)
class ATCTrace:
    """Diagnostic trace of an ATC encoding run."""

    d_in: np.ndarray  # clock-sampled comparator output, uint8
    vth: float
    clock_hz: float

    @property
    def n_clocks(self) -> int:
        """Number of clock cycles simulated."""
        return int(self.d_in.size)

    @property
    def duty_cycle(self) -> float:
        """Fraction of clock cycles with the signal above threshold."""
        if self.d_in.size == 0:
            return 0.0
        return float(np.mean(self.d_in))


def atc_encode(
    signal: np.ndarray,
    fs: float,
    config: "ATCConfig | None" = None,
    comparator: "Comparator | None" = None,
    rectify: bool = True,
    rng: "np.random.Generator | None" = None,
) -> "tuple[EventStream, ATCTrace]":
    """Encode a signal as fixed-threshold crossing events.

    Parameters
    ----------
    signal:
        The amplified sEMG trace (signed volts when ``rectify``, already
        rectified otherwise), sampled at ``fs``.
    fs:
        Input sampling rate in Hz (dataset rate, e.g. 2500 Hz).
    config:
        Threshold and clock; defaults to the paper's ``Vth = 0.3 V`` at
        2 kHz.
    comparator:
        Optional non-ideal comparator; ``None`` means ideal comparison.
    rectify:
        Apply full-wave rectification before comparison (the front-end of
        Fig. 1 compares the rectified envelope side of the signal).
    rng:
        Randomness source for a noisy comparator.

    Returns
    -------
    (EventStream, ATCTrace)
        The event stream (1 symbol per event) and the diagnostic trace.
    """
    config = config if config is not None else ATCConfig()
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    if fs <= 0:
        raise ValueError(f"fs must be positive, got {fs}")
    if rectify:
        x = np.abs(x)

    duration = x.size / fs
    n_clocks = int(np.floor(duration * config.clock_hz))
    if n_clocks == 0:
        raise ValueError(
            f"signal too short: {x.size} samples at {fs} Hz covers no "
            f"{config.clock_hz} Hz clock period"
        )

    if comparator is None:
        dense_bits = (x > config.vth).astype(np.uint8)
    else:
        dense_bits = comparator.compare(x, config.vth, rng=rng)

    # Clock edge k (1-based) samples the dense value active just before it
    # (same convention as repro.digital.synchronizer.sample_at_clock).
    edge_idx = np.ceil(
        np.arange(1, n_clocks + 1) * (fs / config.clock_hz) - 1e-9
    ).astype(np.int64) - 1
    edge_idx = np.clip(edge_idx, 0, x.size - 1)
    d_in = dense_bits[edge_idx]

    idx = rising_edges(d_in)
    times = (idx + 1) / config.clock_hz
    stream = EventStream(
        times=times,
        duration_s=duration,
        levels=None,
        clock_hz=config.clock_hz,
        symbols_per_event=config.symbols_per_event,
    )
    return stream, ATCTrace(d_in=d_in, vth=config.vth, clock_hz=config.clock_hz)
