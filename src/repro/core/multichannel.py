"""Multi-channel D-ATC transmission system (refs. [9], [12]).

The paper's system context is multi-channel force sensing: several sEMG
(or tactile) channels share one IR-UWB link through Address-Event
Representation.  This module packages the per-channel encoders, the AER
arbiter and the receiver-side demultiplexing into one object so
applications (e.g. the sensing-glove example) don't re-wire the pieces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rx.decoders import reconstruct_batch
from ..uwb.aer import AERConfig, aer_decode, aer_encode
from .config import DATCConfig
from .datc import DATCTrace
from .encoders import datc_encode_batch
from .events import EventStream

__all__ = ["MultiChannelDATC", "MultiChannelResult"]


@dataclass(frozen=True)
class MultiChannelResult:
    """Everything produced by one multi-channel encoding pass.

    Attributes
    ----------
    channel_streams:
        The per-channel event streams (before AER merging).
    merged:
        The single AER stream actually transmitted.
    traces:
        Per-channel encoder traces.
    """

    channel_streams: "tuple[EventStream, ...]"
    merged: EventStream
    traces: "tuple[DATCTrace, ...]"

    @property
    def n_events(self) -> int:
        """Events on the shared link."""
        return self.merged.n_events

    @property
    def n_symbols(self) -> int:
        """Symbol slots on the shared link (incl. address bits)."""
        return self.merged.n_symbols


class MultiChannelDATC:
    """An ``n_channels`` D-ATC transmitter bank sharing one AER link.

    Parameters
    ----------
    n_channels:
        Number of electrode channels.
    config:
        The per-channel D-ATC configuration (shared; per-channel configs
        would need per-channel DTC instances in hardware, which the
        referenced systems avoid).
    min_spacing_s:
        AER arbiter serialisation spacing (see
        :func:`repro.uwb.aer.aer_encode`); events closer than this are
        queued.  Must cover the modulator's burst span when the merged
        stream goes straight to a modulator.
    """

    def __init__(
        self,
        n_channels: int,
        config: "DATCConfig | None" = None,
        min_spacing_s: float = 0.0,
    ):
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        self.n_channels = n_channels
        self.config = config if config is not None else DATCConfig()
        self.min_spacing_s = min_spacing_s
        self.aer = AERConfig(
            n_channels=n_channels, level_bits=self.config.dac_bits
        )

    @property
    def symbols_per_event(self) -> int:
        """Marker + address bits + level bits per transmitted event."""
        return self.aer.symbols_per_event

    def encode(
        self, signals: "np.ndarray | list[np.ndarray]", fs: float
    ) -> MultiChannelResult:
        """Encode one signal per channel and merge onto the AER link.

        ``signals`` is either a 2-D ``(n_channels, n_samples)`` array or a
        list of equal-length 1-D arrays (one per channel — the electrodes
        share one ADC-less front end, so their recordings are synchronous
        and cover the same window).  All channels are encoded through the
        batched frame-vectorised D-ATC path
        (:func:`repro.core.encoders.datc_encode_batch`).
        """
        if isinstance(signals, np.ndarray):
            if signals.ndim != 2:
                raise ValueError(
                    f"signals array must be 2-D (n_channels, n_samples), "
                    f"got shape {signals.shape}"
                )
            n_given = signals.shape[0]
        else:
            n_given = len(signals)
        if n_given != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} signals, got {n_given}"
            )
        # Equal channel lengths (synchronous electrodes) are validated by
        # the batch path itself.
        results = datc_encode_batch(signals, fs, self.config)
        streams = [stream for stream, _ in results]
        traces = [trace for _, trace in results]
        merged = aer_encode(streams, self.aer, min_spacing_s=self.min_spacing_s)
        return MultiChannelResult(
            channel_streams=tuple(streams), merged=merged, traces=tuple(traces)
        )

    def decode(self, merged: EventStream) -> "list[EventStream]":
        """Receiver side: split an AER stream back into channels."""
        return aer_decode(merged, self.aer)

    def reconstruct(
        self,
        merged: EventStream,
        fs_out: float = 100.0,
        smooth_window_s: float = 0.25,
    ) -> "list[np.ndarray]":
        """Receiver side: per-channel envelope estimates from the AER stream.

        All channels share the AER stream's observation window, so the
        demultiplexed streams are decoded in one batched call
        (:func:`repro.rx.decoders.reconstruct_batch`); each row is
        bit-identical to the per-channel ``reconstruct_hybrid``.
        """
        matrix = reconstruct_batch(
            self.decode(merged),
            "datc",
            self.config,
            fs_out=fs_out,
            window_s=smooth_window_s,
        )
        return [matrix[c] for c in range(self.n_channels)]
