"""Event-stream containers for threshold-crossing transmission.

An :class:`EventStream` is the library's common currency: both ATC and
D-ATC encoders produce one, the UWB link transports one, and the
receiver-side reconstructors consume one.  Events are positive-edge
threshold crossings; D-ATC streams additionally carry the 4-bit threshold
level in force when each event fired (the payload of the paper's Fig. 2(E)
packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EventStream", "merge_streams"]


@dataclass(frozen=True)
class EventStream:
    """An asynchronous stream of threshold-crossing events.

    Attributes
    ----------
    times:
        Event timestamps in seconds, strictly increasing.
    duration_s:
        Observation-window length (events live in ``[0, duration_s]``).
    levels:
        Optional per-event threshold levels (D-ATC); ``None`` for plain
        ATC streams.
    clock_hz:
        The clock that timestamped the events (metadata; 0 = unclocked).
    symbols_per_event:
        IR-UWB symbols radiated per event (1 for ATC, 1 + DAC bits for
        D-ATC).
    """

    times: np.ndarray
    duration_s: float
    levels: "np.ndarray | None" = None
    clock_hz: float = 0.0
    symbols_per_event: int = 1

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        object.__setattr__(self, "times", times)
        if self.duration_s < 0 or (self.duration_s == 0 and times.size):
            raise ValueError(
                "duration_s must be positive (0 allowed only for an empty "
                f"stream), got {self.duration_s}"
            )
        if times.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {times.shape}")
        if times.size and (times[0] < 0 or times[-1] > self.duration_s):
            raise ValueError("event times must lie within [0, duration_s]")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError("event times must be non-decreasing")
        if self.levels is not None:
            levels = np.asarray(self.levels, dtype=np.int64)
            object.__setattr__(self, "levels", levels)
            if levels.shape != times.shape:
                raise ValueError(
                    f"levels shape {levels.shape} must match times shape {times.shape}"
                )
        if self.symbols_per_event < 1:
            raise ValueError(
                f"symbols_per_event must be >= 1, got {self.symbols_per_event}"
            )

    # ------------------------------------------------------------------
    # Basic accounting
    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Number of events in the stream."""
        return int(self.times.size)

    @property
    def mean_rate_hz(self) -> float:
        """Average firing rate over the observation window."""
        if self.duration_s == 0:
            return 0.0
        return self.n_events / self.duration_s

    @property
    def n_symbols(self) -> int:
        """Total IR-UWB symbols this stream costs to transmit.

        This is the paper's Sec. III-B accounting: e.g. 3724 D-ATC events
        x 5 symbols = 18620.
        """
        return self.n_events * self.symbols_per_event

    @property
    def has_levels(self) -> bool:
        """True when the stream carries threshold-level payloads (D-ATC)."""
        return self.levels is not None

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def counts_in_windows(self, window_s: float) -> np.ndarray:
        """Event counts in contiguous windows of ``window_s`` seconds.

        The receiver's "low-complexity windowing" for force recovery.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        n_windows = int(np.ceil(self.duration_s / window_s))
        edges = np.arange(n_windows + 1) * window_s
        counts, _ = np.histogram(self.times, bins=edges)
        return counts

    def inter_event_intervals(self) -> np.ndarray:
        """Differences between consecutive event times."""
        return np.diff(self.times)

    def slice(self, t_start: float, t_stop: float) -> "EventStream":
        """Events within ``[t_start, t_stop)``, re-referenced to t_start."""
        if not 0 <= t_start < t_stop <= self.duration_s:
            raise ValueError(
                f"need 0 <= t_start < t_stop <= duration, got [{t_start}, {t_stop})"
            )
        mask = (self.times >= t_start) & (self.times < t_stop)
        return EventStream(
            times=self.times[mask] - t_start,
            duration_s=t_stop - t_start,
            levels=self.levels[mask] if self.levels is not None else None,
            clock_hz=self.clock_hz,
            symbols_per_event=self.symbols_per_event,
        )

    def drop_events(self, keep_mask: np.ndarray) -> "EventStream":
        """A copy keeping only events where ``keep_mask`` is True.

        Used by the channel model for pulse erasures and by the artifact
        robustness experiments ("artifacts effect is similar to pulse
        missing").
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != self.times.shape:
            raise ValueError(
                f"keep_mask shape {keep_mask.shape} must match times shape "
                f"{self.times.shape}"
            )
        return EventStream(
            times=self.times[keep_mask],
            duration_s=self.duration_s,
            levels=self.levels[keep_mask] if self.levels is not None else None,
            clock_hz=self.clock_hz,
            symbols_per_event=self.symbols_per_event,
        )

    def level_voltages(self, vref: float = 1.0, dac_bits: int = 4) -> np.ndarray:
        """Per-event threshold voltages via paper Eqn. (3)."""
        if self.levels is None:
            raise ValueError("stream carries no threshold levels (plain ATC)")
        return vref * self.levels.astype(float) / float(1 << dac_bits)


def merge_streams(streams: "list[EventStream]") -> EventStream:
    """Merge multiple single-channel streams into one time-sorted stream.

    All inputs must share the same duration and symbol cost.  Levels are
    preserved only when *every* stream carries them.  This models the AER
    arbiter of the multi-channel systems in refs. [9]/[12].
    """
    if not streams:
        raise ValueError("need at least one stream to merge")
    duration = streams[0].duration_s
    spe = streams[0].symbols_per_event
    for s in streams[1:]:
        if s.duration_s != duration:
            raise ValueError("all streams must share duration_s")
        if s.symbols_per_event != spe:
            raise ValueError("all streams must share symbols_per_event")
    times = np.concatenate([s.times for s in streams])
    order = np.argsort(times, kind="stable")
    levels = None
    if all(s.has_levels for s in streams):
        levels = np.concatenate([s.levels for s in streams])[order]
    return EventStream(
        times=times[order],
        duration_s=duration,
        levels=levels,
        clock_hz=streams[0].clock_hz,
        symbols_per_event=spe,
    )
