"""The paper's primary contribution: ATC and D-ATC event encoders."""

from .atc import ATCTrace, atc_encode, rising_edges
from .config import PAPER_CLOCK_HZ, ATCConfig, DATCConfig
from .datc import DATCTrace, datc_encode
from .encoders import (
    ATCEncoder,
    DATCEncoder,
    StreamingEncoder,
    atc_encode_batch,
    datc_encode_batch,
    encode_batch,
)
from .events import EventStream, merge_streams
from .intervals import interval_levels_float, select_level
from .pipeline import (
    DEFAULT_FS_OUT,
    DEFAULT_WINDOW_S,
    PipelineResult,
    run_atc,
    run_batch,
    run_datc,
)
from .multichannel import MultiChannelDATC, MultiChannelResult
from .predictor import ThresholdPredictor

__all__ = [
    "ATCTrace",
    "atc_encode",
    "rising_edges",
    "PAPER_CLOCK_HZ",
    "ATCConfig",
    "DATCConfig",
    "DATCTrace",
    "datc_encode",
    "StreamingEncoder",
    "ATCEncoder",
    "DATCEncoder",
    "encode_batch",
    "atc_encode_batch",
    "datc_encode_batch",
    "EventStream",
    "merge_streams",
    "interval_levels_float",
    "select_level",
    "DEFAULT_FS_OUT",
    "DEFAULT_WINDOW_S",
    "PipelineResult",
    "run_atc",
    "run_datc",
    "run_batch",
    "ThresholdPredictor",
    "MultiChannelDATC",
    "MultiChannelResult",
]
