"""The paper's primary contribution: ATC and D-ATC event encoders."""

from .atc import ATCTrace, atc_encode, rising_edges
from .config import PAPER_CLOCK_HZ, ATCConfig, DATCConfig
from .datc import DATCTrace, datc_encode
from .events import EventStream, merge_streams
from .intervals import interval_levels_float, select_level
from .pipeline import (
    DEFAULT_FS_OUT,
    DEFAULT_WINDOW_S,
    PipelineResult,
    run_atc,
    run_datc,
)
from .multichannel import MultiChannelDATC, MultiChannelResult
from .predictor import ThresholdPredictor

__all__ = [
    "ATCTrace",
    "atc_encode",
    "rising_edges",
    "PAPER_CLOCK_HZ",
    "ATCConfig",
    "DATCConfig",
    "DATCTrace",
    "datc_encode",
    "EventStream",
    "merge_streams",
    "interval_levels_float",
    "select_level",
    "DEFAULT_FS_OUT",
    "DEFAULT_WINDOW_S",
    "PipelineResult",
    "run_atc",
    "run_datc",
    "ThresholdPredictor",
    "MultiChannelDATC",
    "MultiChannelResult",
]
