"""The D-ATC behavioural encoder (the paper's primary contribution).

Frame-synchronous simulation of the whole Fig. 1 transmitter:

1. the rectified amplified sEMG is compared against the DAC threshold
   ``Vth = vref * Set_Vth / 2**Nb`` (Eqn. 3);
2. the comparator bit is resampled at the 2 kHz system clock (``In_reg``);
3. the DTC counts ones per frame, and at each ``End_of_frame`` the
   Predictor recomputes ``Set_Vth`` from the weighted average of the last
   three frame counts (Eqn. 1 / Listing 1) against the interval levels of
   Eqn. (2);
4. every positive edge of the sampled comparator output is a transmission
   event, radiated together with the 4-bit level (Fig. 2(E)).

The implementation is frame-vectorised: within a frame the threshold is
constant, so comparison and edge detection are plain numpy; only the
per-frame predictor update is sequential.  With ``config.quantized=True``
the arithmetic is bit-identical to :class:`repro.digital.dtc_rtl.DTCRtl`
(the "Verilog matches Matlab" check of Sec. III-C).

Streaming & batching
--------------------
:func:`datc_encode` is a thin wrapper over the incremental
:class:`repro.core.encoders.DATCEncoder` — feed a ``DATCEncoder``
arbitrary chunks via ``push()`` for live sources (it carries comparator,
frame and predictor state across chunk boundaries) with bit-identical
output.  To encode many equal-length signals at once, use
:func:`repro.core.encoders.datc_encode_batch`, which vectorises each frame
across the signal axis with one predictor per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analog.comparator import Comparator
from ..analog.dac import DAC
from .atc import rising_edges
from .config import DATCConfig
from .events import EventStream
from .predictor import ThresholdPredictor

__all__ = ["DATCTrace", "datc_encode"]


@dataclass(frozen=True)
class DATCTrace:
    """Full diagnostic trace of a D-ATC encoding run.

    Attributes
    ----------
    d_in:
        Clock-sampled comparator output (uint8), length ``n_clocks``.
    levels:
        ``Set_Vth`` in effect at each clock cycle.
    vth:
        Threshold voltage at each clock cycle (DAC output).
    frame_levels:
        Level selected at each completed frame boundary.
    frame_ones:
        Ones count of each completed frame (``N_one``).
    frame_avr:
        Weighted average computed at each frame boundary (Eqn. 1).
    clock_hz, frame_size:
        Operating point.
    """

    d_in: np.ndarray
    levels: np.ndarray
    vth: np.ndarray
    frame_levels: np.ndarray
    frame_ones: np.ndarray
    frame_avr: np.ndarray
    clock_hz: float
    frame_size: int

    @property
    def n_clocks(self) -> int:
        """Number of clock cycles simulated."""
        return int(self.d_in.size)

    @property
    def n_frames(self) -> int:
        """Number of completed frames."""
        return int(self.frame_levels.size)

    @property
    def duty_cycle(self) -> float:
        """Overall fraction of above-threshold clock cycles."""
        if self.d_in.size == 0:
            return 0.0
        return float(np.mean(self.d_in))

    def vth_at_times(self, times: np.ndarray) -> np.ndarray:
        """Threshold voltage in effect at arbitrary times (zero-order hold)."""
        idx = np.clip(
            (np.asarray(times, dtype=float) * self.clock_hz).astype(np.int64),
            0,
            self.n_clocks - 1,
        )
        return self.vth[idx]


def datc_encode(
    signal: np.ndarray,
    fs: float,
    config: "DATCConfig | None" = None,
    comparator: "Comparator | None" = None,
    dac: "DAC | None" = None,
    rectify: bool = True,
    rng: "np.random.Generator | None" = None,
) -> "tuple[EventStream, DATCTrace]":
    """Encode a signal with Dynamic Average Threshold Crossing.

    Parameters
    ----------
    signal:
        Amplified sEMG at ``fs`` Hz (signed when ``rectify`` is True).
    fs:
        Input sampling rate (dataset rate, e.g. 2500 Hz).
    config:
        The D-ATC operating point; ``DATCConfig()`` is the paper's.
    comparator:
        Optional non-ideal comparator (hysteresis/noise).  ``None`` = ideal.
    dac:
        Optional non-ideal DAC; ``None`` uses the exact Eqn. (3).
    rectify:
        Full-wave rectify the input before thresholding.
    rng:
        Randomness for a noisy comparator.

    Returns
    -------
    (EventStream, DATCTrace)
        The event stream — with per-event 4-bit levels and
        ``symbols_per_event = 1 + dac_bits`` — and the full trace.
    """
    from .encoders import DATCEncoder  # deferred: encoders imports this module

    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    encoder = DATCEncoder(
        fs, config, comparator=comparator, dac=dac, rectify=rectify, rng=rng
    )
    encoder.push(x)
    trace = encoder.finalize()
    return encoder.stream, trace
