"""The D-ATC behavioural encoder (the paper's primary contribution).

Frame-synchronous simulation of the whole Fig. 1 transmitter:

1. the rectified amplified sEMG is compared against the DAC threshold
   ``Vth = vref * Set_Vth / 2**Nb`` (Eqn. 3);
2. the comparator bit is resampled at the 2 kHz system clock (``In_reg``);
3. the DTC counts ones per frame, and at each ``End_of_frame`` the
   Predictor recomputes ``Set_Vth`` from the weighted average of the last
   three frame counts (Eqn. 1 / Listing 1) against the interval levels of
   Eqn. (2);
4. every positive edge of the sampled comparator output is a transmission
   event, radiated together with the 4-bit level (Fig. 2(E)).

The implementation is frame-vectorised: within a frame the threshold is
constant, so comparison and edge detection are plain numpy; only the
per-frame predictor update is sequential.  With ``config.quantized=True``
the arithmetic is bit-identical to :class:`repro.digital.dtc_rtl.DTCRtl`
(the "Verilog matches Matlab" check of Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analog.comparator import Comparator
from ..analog.dac import DAC
from .atc import rising_edges
from .config import DATCConfig
from .events import EventStream
from .predictor import ThresholdPredictor

__all__ = ["DATCTrace", "datc_encode"]


@dataclass(frozen=True)
class DATCTrace:
    """Full diagnostic trace of a D-ATC encoding run.

    Attributes
    ----------
    d_in:
        Clock-sampled comparator output (uint8), length ``n_clocks``.
    levels:
        ``Set_Vth`` in effect at each clock cycle.
    vth:
        Threshold voltage at each clock cycle (DAC output).
    frame_levels:
        Level selected at each completed frame boundary.
    frame_ones:
        Ones count of each completed frame (``N_one``).
    frame_avr:
        Weighted average computed at each frame boundary (Eqn. 1).
    clock_hz, frame_size:
        Operating point.
    """

    d_in: np.ndarray
    levels: np.ndarray
    vth: np.ndarray
    frame_levels: np.ndarray
    frame_ones: np.ndarray
    frame_avr: np.ndarray
    clock_hz: float
    frame_size: int

    @property
    def n_clocks(self) -> int:
        """Number of clock cycles simulated."""
        return int(self.d_in.size)

    @property
    def n_frames(self) -> int:
        """Number of completed frames."""
        return int(self.frame_levels.size)

    @property
    def duty_cycle(self) -> float:
        """Overall fraction of above-threshold clock cycles."""
        if self.d_in.size == 0:
            return 0.0
        return float(np.mean(self.d_in))

    def vth_at_times(self, times: np.ndarray) -> np.ndarray:
        """Threshold voltage in effect at arbitrary times (zero-order hold)."""
        idx = np.clip(
            (np.asarray(times, dtype=float) * self.clock_hz).astype(np.int64),
            0,
            self.n_clocks - 1,
        )
        return self.vth[idx]


def datc_encode(
    signal: np.ndarray,
    fs: float,
    config: "DATCConfig | None" = None,
    comparator: "Comparator | None" = None,
    dac: "DAC | None" = None,
    rectify: bool = True,
    rng: "np.random.Generator | None" = None,
) -> "tuple[EventStream, DATCTrace]":
    """Encode a signal with Dynamic Average Threshold Crossing.

    Parameters
    ----------
    signal:
        Amplified sEMG at ``fs`` Hz (signed when ``rectify`` is True).
    fs:
        Input sampling rate (dataset rate, e.g. 2500 Hz).
    config:
        The D-ATC operating point; ``DATCConfig()`` is the paper's.
    comparator:
        Optional non-ideal comparator (hysteresis/noise).  ``None`` = ideal.
    dac:
        Optional non-ideal DAC; ``None`` uses the exact Eqn. (3).
    rectify:
        Full-wave rectify the input before thresholding.
    rng:
        Randomness for a noisy comparator.

    Returns
    -------
    (EventStream, DATCTrace)
        The event stream — with per-event 4-bit levels and
        ``symbols_per_event = 1 + dac_bits`` — and the full trace.
    """
    config = config if config is not None else DATCConfig()
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    if fs <= 0:
        raise ValueError(f"fs must be positive, got {fs}")
    if rectify:
        x = np.abs(x)
    if dac is not None and dac.n_bits != config.dac_bits:
        raise ValueError(
            f"dac.n_bits ({dac.n_bits}) must match config.dac_bits ({config.dac_bits})"
        )

    duration = x.size / fs
    n_clocks = int(np.floor(duration * config.clock_hz))
    if n_clocks == 0:
        raise ValueError(
            f"signal too short: {x.size} samples at {fs} Hz covers no "
            f"{config.clock_hz} Hz clock period"
        )

    # Values seen by the clocked comparator flop at each clock edge (same
    # convention as repro.digital.synchronizer.sample_at_clock).
    edge_idx = np.ceil(
        np.arange(1, n_clocks + 1) * (fs / config.clock_hz) - 1e-9
    ).astype(np.int64) - 1
    edge_idx = np.clip(edge_idx, 0, x.size - 1)
    x_clk = x[edge_idx]

    predictor = ThresholdPredictor(config)
    frame_size = config.frame_size

    d_in = np.empty(n_clocks, dtype=np.uint8)
    levels = np.empty(n_clocks, dtype=np.int64)
    vth_per_clock = np.empty(n_clocks, dtype=float)
    frame_levels = []
    frame_ones = []
    frame_avr = []

    comparator_state = 0
    n_frames_total = -(-n_clocks // frame_size)  # ceil division
    for f in range(n_frames_total):
        k0 = f * frame_size
        k1 = min(k0 + frame_size, n_clocks)
        level = predictor.level
        vth = dac.to_voltage(level) if dac is not None else config.level_to_voltage(level)

        segment = x_clk[k0:k1]
        if comparator is None:
            bits = (segment > vth).astype(np.uint8)
        else:
            bits = comparator.compare(
                segment, vth, rng=rng, initial_state=comparator_state
            )
            comparator_state = int(bits[-1]) if bits.size else comparator_state

        d_in[k0:k1] = bits
        levels[k0:k1] = level
        vth_per_clock[k0:k1] = vth

        if k1 - k0 == frame_size:  # only completed frames update the DTC
            n_one = int(bits.sum())
            frame_avr.append(predictor.average(n_one))
            predictor.update(n_one)
            frame_ones.append(n_one)
            frame_levels.append(predictor.level)

    idx = rising_edges(d_in)
    times = (idx + 1) / config.clock_hz
    stream = EventStream(
        times=times,
        duration_s=duration,
        levels=levels[idx],
        clock_hz=config.clock_hz,
        symbols_per_event=config.symbols_per_event,
    )
    trace = DATCTrace(
        d_in=d_in,
        levels=levels,
        vth=vth_per_clock,
        frame_levels=np.asarray(frame_levels, dtype=np.int64),
        frame_ones=np.asarray(frame_ones, dtype=np.int64),
        frame_avr=np.asarray(frame_avr, dtype=float),
        clock_hz=config.clock_hz,
        frame_size=frame_size,
    )
    return stream, trace
