"""Interval-level computation (paper Eqn. 2) and level selection.

This is the float-domain ("Matlab") counterpart of the hardware LUT in
:mod:`repro.digital.lut`; both views coexist because the paper validates
its Verilog against a Matlab reference, and so do our tests.
"""

from __future__ import annotations

import numpy as np

from ..digital.lut import interval_levels

__all__ = ["interval_levels_float", "select_level"]


def interval_levels_float(
    frame_size: int, n_levels: int = 16, step: float = 0.03
) -> np.ndarray:
    """Eqn. (2) levels as floats: ``step * (i+1) * frame_size``."""
    return interval_levels(frame_size, n_intervals=n_levels, step=step)


def select_level(
    avr: float, levels: "np.ndarray | tuple", min_level: int = 1
) -> int:
    """Listing 1's priority encoder: highest ``i`` with ``avr >= levels[i]``.

    Scans from the top level down to ``min_level + 1``; if none matches the
    result is ``min_level`` (the listing's final ``else`` assigns 1, never
    0 — the threshold must stay above the noise floor).
    """
    n = len(levels)
    if not 0 <= min_level < n:
        raise ValueError(f"min_level {min_level} out of range [0, {n})")
    for i in range(n - 1, min_level, -1):
        if avr >= levels[i]:
            return i
    return min_level
