"""End-to-end TX -> RX pipeline helpers.

These wrap encoder + reconstructor + correlation into one call so that the
experiment drivers, examples and benchmarks all evaluate a pattern the same
way: encode the sEMG into events, reconstruct the envelope at the receiver,
and score the reconstruction against the pattern's ground-truth ARV
envelope (the paper's "% correlation w.r.t. raw muscle force").

Batching: :func:`run_batch` evaluates many patterns through the
frame-vectorised batch encoders (:mod:`repro.core.encoders`) *and* the
batched receiver engine (:mod:`repro.rx.decoders`) — one vectorised
decode + one stacked correlation call for the whole batch — the hot path
of the dataset sweeps.  The remaining per-pattern work (ground-truth
envelopes, the ragged fallback) fans out over the pluggable execution
runtime (:mod:`repro.runtime.executors`): opt-in ``jobs`` workers on the
``serial``/``thread``/``process`` backend of choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..runtime.executors import map_jobs
from ..rx.correlation import (
    aligned_correlation_percent,
    aligned_correlation_percent_batch,
)
from ..rx.decoders import reconstruct_batch
from ..rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from ..signals.dataset import Pattern
from .atc import ATCTrace, atc_encode
from .config import ATCConfig, DATCConfig
from .datc import DATCTrace, datc_encode
from .encoders import encode_batch
from .events import EventStream

__all__ = [
    "PipelineResult",
    "map_jobs",
    "run_atc",
    "run_datc",
    "run_batch",
    "DEFAULT_FS_OUT",
    "DEFAULT_WINDOW_S",
]

DEFAULT_FS_OUT = 100.0  # reconstruction grid (Hz); force bandwidth is a few Hz
DEFAULT_WINDOW_S = 0.25  # the receiver's smoothing window


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of encoding + reconstructing one pattern.

    Attributes
    ----------
    scheme:
        "atc" or "datc".
    stream:
        The transmitted event stream.
    reconstruction:
        Receiver-side envelope estimate on the ``fs_out`` grid.
    fs_out:
        Grid rate of the reconstruction (Hz).
    correlation_pct:
        Paper metric: 100 x Pearson r against the ground-truth envelope.
    trace:
        The encoder's diagnostic trace (ATCTrace or DATCTrace).
    """

    scheme: str
    stream: EventStream
    reconstruction: np.ndarray
    fs_out: float
    correlation_pct: float
    trace: "ATCTrace | DATCTrace"

    @property
    def n_events(self) -> int:
        """Number of transmitted events."""
        return self.stream.n_events

    @property
    def n_symbols(self) -> int:
        """Total IR-UWB symbols transmitted (paper Sec. III-B accounting)."""
        return self.stream.n_symbols


def _receive_and_score(
    scheme: str,
    stream: EventStream,
    trace: "ATCTrace | DATCTrace",
    pattern: Pattern,
    config: "ATCConfig | DATCConfig",
    fs_out: float,
    window_s: float,
) -> PipelineResult:
    """Receiver side shared by the one-shot and batched paths."""
    if scheme == "atc":
        recon = reconstruct_rate(stream, fs_out=fs_out, window_s=window_s)
    else:
        recon = reconstruct_hybrid(
            stream,
            fs_out=fs_out,
            vref=config.vref,
            dac_bits=config.dac_bits,
            smooth_window_s=window_s,
        )
    reference = pattern.ground_truth_envelope(window_s=window_s)
    corr = aligned_correlation_percent(recon, reference)
    return PipelineResult(
        scheme=scheme,
        stream=stream,
        reconstruction=recon,
        fs_out=fs_out,
        correlation_pct=corr,
        trace=trace,
    )


def run_atc(
    pattern: Pattern,
    config: "ATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """Fixed-threshold ATC end to end on one pattern."""
    config = config if config is not None else ATCConfig()
    stream, trace = atc_encode(pattern.emg, pattern.fs, config)
    return _receive_and_score("atc", stream, trace, pattern, config, fs_out, window_s)


def run_datc(
    pattern: Pattern,
    config: "DATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """D-ATC end to end on one pattern."""
    config = config if config is not None else DATCConfig()
    stream, trace = datc_encode(pattern.emg, pattern.fs, config)
    return _receive_and_score("datc", stream, trace, pattern, config, fs_out, window_s)


def _evaluate_pattern(
    pattern: Pattern,
    scheme: str,
    config: "ATCConfig | DATCConfig",
    fs_out: float,
    window_s: float,
) -> PipelineResult:
    """One pattern end to end (module-level so process workers can run it)."""
    encode = atc_encode if scheme == "atc" else datc_encode
    stream, trace = encode(pattern.emg, pattern.fs, config)
    return _receive_and_score(
        scheme, stream, trace, pattern, config, fs_out, window_s
    )


def _pattern_envelope(pattern: Pattern, window_s: float) -> np.ndarray:
    """Picklable ground-truth-envelope worker for the batch fan-out."""
    return pattern.ground_truth_envelope(window_s=window_s)


def run_batch(
    patterns: "list[Pattern]",
    scheme: str = "datc",
    config: "ATCConfig | DATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[PipelineResult]":
    """Evaluate many patterns end to end, in pattern order.

    Both sides run through the batched 2-D engines when every pattern
    shares the same sampling rate and length (a dataset's always do): one
    ``encode_batch`` call, one :func:`repro.rx.decoders.reconstruct_batch`
    decode of all streams, and one stacked-correlation call for the whole
    batch.  Ragged inputs fall back to the per-pattern path via
    :func:`repro.runtime.executors.map_jobs`.  ``jobs`` and ``backend``
    select the execution runtime for the remaining per-pattern work
    (ground-truth envelopes, the ragged fallback); ``None``/``1`` stays
    sequential.  Results are bit-identical on every path and backend.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    if config is None:
        config = ATCConfig() if scheme == "atc" else DATCConfig()
    expected = ATCConfig if scheme == "atc" else DATCConfig
    if not isinstance(config, expected):
        raise TypeError(
            f"scheme {scheme!r} needs a {expected.__name__}, "
            f"got {type(config).__name__}"
        )
    if not patterns:
        return []

    fs = patterns[0].fs
    homogeneous = all(
        p.fs == fs and p.n_samples == patterns[0].n_samples for p in patterns
    )
    if not homogeneous:
        evaluate = partial(
            _evaluate_pattern,
            scheme=scheme,
            config=config,
            fs_out=fs_out,
            window_s=window_s,
        )
        return map_jobs(evaluate, patterns, jobs, backend=backend)

    emg = np.stack([p.emg for p in patterns])
    encoded = encode_batch(emg, fs, config)
    streams = [stream for stream, _ in encoded]
    recons = reconstruct_batch(
        streams, scheme, config, fs_out=fs_out, window_s=window_s
    )
    references = np.stack(
        map_jobs(
            partial(_pattern_envelope, window_s=window_s),
            patterns,
            jobs,
            backend=backend,
        )
    )
    corrs = aligned_correlation_percent_batch(recons, references)
    return [
        PipelineResult(
            scheme=scheme,
            stream=stream,
            reconstruction=recons[i],
            fs_out=fs_out,
            correlation_pct=float(corrs[i]),
            trace=trace,
        )
        for i, (stream, trace) in enumerate(encoded)
    ]
