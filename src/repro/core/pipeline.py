"""End-to-end TX -> RX pipeline helpers.

These wrap encoder + reconstructor + correlation into one call so that the
experiment drivers, examples and benchmarks all evaluate a pattern the same
way: encode the sEMG into events, reconstruct the envelope at the receiver,
and score the reconstruction against the pattern's ground-truth ARV
envelope (the paper's "% correlation w.r.t. raw muscle force").

Since the declarative API redesign the canonical way to describe and run
an evaluation is :mod:`repro.api` (:class:`~repro.api.ExperimentSpec` +
:class:`~repro.api.Experiment`): the helpers here are thin views onto it.
:func:`run_atc` / :func:`run_datc` stay as the supported single-pattern
conveniences; :func:`run_batch` is a **deprecated** wrapper kept for
backwards compatibility, bit-identical to
``Experiment(spec).run(patterns)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..runtime.executors import map_jobs
from ..rx.correlation import aligned_correlation_percent
from ..rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from ..signals.dataset import Pattern
from .atc import ATCTrace, atc_encode
from .config import ATCConfig, DATCConfig
from .datc import DATCTrace, datc_encode
from .events import EventStream

__all__ = [
    "PipelineResult",
    "map_jobs",
    "run_atc",
    "run_datc",
    "run_batch",
    "DEFAULT_FS_OUT",
    "DEFAULT_WINDOW_S",
]

DEFAULT_FS_OUT = 100.0  # reconstruction grid (Hz); force bandwidth is a few Hz
DEFAULT_WINDOW_S = 0.25  # the receiver's smoothing window


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of encoding + reconstructing one pattern.

    Attributes
    ----------
    scheme:
        "atc" or "datc".
    stream:
        The transmitted event stream.
    reconstruction:
        Receiver-side envelope estimate on the ``fs_out`` grid.
    fs_out:
        Grid rate of the reconstruction (Hz).
    correlation_pct:
        Paper metric: 100 x Pearson r against the ground-truth envelope.
    trace:
        The encoder's diagnostic trace (ATCTrace or DATCTrace).
    """

    scheme: str
    stream: EventStream
    reconstruction: np.ndarray
    fs_out: float
    correlation_pct: float
    trace: "ATCTrace | DATCTrace"

    @property
    def n_events(self) -> int:
        """Number of transmitted events."""
        return self.stream.n_events

    @property
    def n_symbols(self) -> int:
        """Total IR-UWB symbols transmitted (paper Sec. III-B accounting)."""
        return self.stream.n_symbols


def _receive_and_score(
    scheme: str,
    stream: EventStream,
    trace: "ATCTrace | DATCTrace",
    pattern: Pattern,
    config: "ATCConfig | DATCConfig",
    fs_out: float,
    window_s: float,
    dac_bits: "int | None" = None,
) -> PipelineResult:
    """Receiver side shared by the one-shot and batched paths.

    ``dac_bits`` overrides the encoder config's DAC resolution on the
    receiver (the :class:`repro.api.DecoderSpec` mismatched-receiver
    study); ``None`` decodes at the encoder's resolution.
    """
    if scheme == "atc":
        recon = reconstruct_rate(stream, fs_out=fs_out, window_s=window_s)
    else:
        recon = reconstruct_hybrid(
            stream,
            fs_out=fs_out,
            vref=config.vref,
            dac_bits=dac_bits if dac_bits is not None else config.dac_bits,
            smooth_window_s=window_s,
        )
    reference = pattern.ground_truth_envelope(window_s=window_s)
    corr = aligned_correlation_percent(recon, reference)
    return PipelineResult(
        scheme=scheme,
        stream=stream,
        reconstruction=recon,
        fs_out=fs_out,
        correlation_pct=corr,
        trace=trace,
    )


def run_atc(
    pattern: Pattern,
    config: "ATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """Fixed-threshold ATC end to end on one pattern (spec-path view)."""
    from ..api import Experiment, ExperimentSpec

    spec = ExperimentSpec.for_scheme(
        "atc", config, fs_out=fs_out, window_s=window_s
    )
    return Experiment(spec).run_one(pattern)


def run_datc(
    pattern: Pattern,
    config: "DATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """D-ATC end to end on one pattern (spec-path view)."""
    from ..api import Experiment, ExperimentSpec

    spec = ExperimentSpec.for_scheme(
        "datc", config, fs_out=fs_out, window_s=window_s
    )
    return Experiment(spec).run_one(pattern)


def _evaluate_pattern(
    pattern: Pattern,
    scheme: str,
    config: "ATCConfig | DATCConfig",
    fs_out: float,
    window_s: float,
    dac_bits: "int | None" = None,
) -> PipelineResult:
    """One pattern end to end (module-level so process workers can run it)."""
    encode = atc_encode if scheme == "atc" else datc_encode
    stream, trace = encode(pattern.emg, pattern.fs, config)
    return _receive_and_score(
        scheme, stream, trace, pattern, config, fs_out, window_s, dac_bits
    )


def _pattern_envelope(pattern: Pattern, window_s: float) -> np.ndarray:
    """Picklable ground-truth-envelope worker for the batch fan-out."""
    return pattern.ground_truth_envelope(window_s=window_s)


def warn_legacy(name: str, replacement: str) -> None:
    """Emit the one DeprecationWarning every legacy wrapper owes its caller."""
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_batch(
    patterns: "list[Pattern]",
    scheme: str = "datc",
    config: "ATCConfig | DATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[PipelineResult]":
    """Deprecated: use ``Experiment(ExperimentSpec(...)).run(patterns)``.

    Thin wrapper over the spec path — bit-identical to it (the engine
    simply moved to :mod:`repro.api`); kept so pre-redesign callers keep
    working.
    """
    from ..api import Experiment, ExperimentSpec

    warn_legacy(
        "run_batch", "repro.api.Experiment(ExperimentSpec(...)).run(patterns)"
    )
    spec = ExperimentSpec.for_scheme(
        scheme, config, fs_out=fs_out, window_s=window_s
    )
    return Experiment(spec).run(patterns, jobs=jobs, backend=backend)
