"""End-to-end TX -> RX pipeline helpers.

These wrap encoder + reconstructor + correlation into one call so that the
experiment drivers, examples and benchmarks all evaluate a pattern the same
way: encode the sEMG into events, reconstruct the envelope at the receiver,
and score the reconstruction against the pattern's ground-truth ARV
envelope (the paper's "% correlation w.r.t. raw muscle force").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rx.correlation import aligned_correlation_percent
from ..rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from ..signals.dataset import Pattern
from .atc import ATCTrace, atc_encode
from .config import ATCConfig, DATCConfig
from .datc import DATCTrace, datc_encode
from .events import EventStream

__all__ = ["PipelineResult", "run_atc", "run_datc", "DEFAULT_FS_OUT", "DEFAULT_WINDOW_S"]

DEFAULT_FS_OUT = 100.0  # reconstruction grid (Hz); force bandwidth is a few Hz
DEFAULT_WINDOW_S = 0.25  # the receiver's smoothing window


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of encoding + reconstructing one pattern.

    Attributes
    ----------
    scheme:
        "atc" or "datc".
    stream:
        The transmitted event stream.
    reconstruction:
        Receiver-side envelope estimate on the ``fs_out`` grid.
    fs_out:
        Grid rate of the reconstruction (Hz).
    correlation_pct:
        Paper metric: 100 x Pearson r against the ground-truth envelope.
    trace:
        The encoder's diagnostic trace (ATCTrace or DATCTrace).
    """

    scheme: str
    stream: EventStream
    reconstruction: np.ndarray
    fs_out: float
    correlation_pct: float
    trace: "ATCTrace | DATCTrace"

    @property
    def n_events(self) -> int:
        """Number of transmitted events."""
        return self.stream.n_events

    @property
    def n_symbols(self) -> int:
        """Total IR-UWB symbols transmitted (paper Sec. III-B accounting)."""
        return self.stream.n_symbols


def run_atc(
    pattern: Pattern,
    config: "ATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """Fixed-threshold ATC end to end on one pattern."""
    config = config if config is not None else ATCConfig()
    stream, trace = atc_encode(pattern.emg, pattern.fs, config)
    recon = reconstruct_rate(stream, fs_out=fs_out, window_s=window_s)
    reference = pattern.ground_truth_envelope(window_s=window_s)
    corr = aligned_correlation_percent(recon, reference)
    return PipelineResult(
        scheme="atc",
        stream=stream,
        reconstruction=recon,
        fs_out=fs_out,
        correlation_pct=corr,
        trace=trace,
    )


def run_datc(
    pattern: Pattern,
    config: "DATCConfig | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> PipelineResult:
    """D-ATC end to end on one pattern."""
    config = config if config is not None else DATCConfig()
    stream, trace = datc_encode(pattern.emg, pattern.fs, config)
    recon = reconstruct_hybrid(
        stream,
        fs_out=fs_out,
        vref=config.vref,
        dac_bits=config.dac_bits,
        smooth_window_s=window_s,
    )
    reference = pattern.ground_truth_envelope(window_s=window_s)
    corr = aligned_correlation_percent(recon, reference)
    return PipelineResult(
        scheme="datc",
        stream=stream,
        reconstruction=recon,
        fs_out=fs_out,
        correlation_pct=corr,
        trace=trace,
    )
