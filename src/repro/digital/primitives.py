"""Cycle-accurate register-transfer primitives.

These small classes model the sequential elements of Fig. 4 of the paper
(counters, shift registers, registers, multiplexers) with explicit widths
and wrap/saturate semantics, so that:

* :mod:`repro.digital.dtc_rtl` can be written as a direct transcription of
  the block diagram, and
* :mod:`repro.hardware.netlist` can elaborate the same objects into a
  gate-level cost estimate (every primitive knows its flip-flop and
  combinational footprint).

Update discipline: combinational reads happen freely; state changes only
through the ``tick``/``load``/``shift_in`` methods, which model a single
rising clock edge.
"""

from __future__ import annotations

__all__ = ["Register", "Counter", "ShiftRegister", "Mux", "mask_for_width"]


def mask_for_width(width: int) -> int:
    """Bit mask for an unsigned field of ``width`` bits."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (1 << width) - 1


class Register:
    """A ``width``-bit register with synchronous load and async reset."""

    def __init__(self, width: int, reset_value: int = 0, name: str = "reg"):
        self.width = width
        self._mask = mask_for_width(width)
        if not 0 <= reset_value <= self._mask:
            raise ValueError(
                f"reset_value {reset_value} does not fit in {width} bits"
            )
        self.reset_value = reset_value
        self.name = name
        self._q = reset_value

    @property
    def q(self) -> int:
        """Current register output."""
        return self._q

    def load(self, d: int) -> None:
        """Clock in a new value (truncated to the register width)."""
        self._q = int(d) & self._mask

    def reset(self) -> None:
        """Asynchronous reset to the reset value."""
        self._q = self.reset_value

    @property
    def n_flip_flops(self) -> int:
        """Sequential cost: one flip-flop per bit."""
        return self.width

    def __repr__(self) -> str:
        return f"Register({self.name}, width={self.width}, q={self._q})"


class Counter:
    """A ``width``-bit up-counter with synchronous enable and clear.

    ``saturate=True`` holds at full scale instead of wrapping; the DTC's
    ``N_one`` counter can never overflow by construction (it is cleared
    every frame and ``frame_size <= 800 < 2**10``) but the model checks
    that invariant rather than assuming it.
    """

    def __init__(self, width: int, saturate: bool = False, name: str = "counter"):
        self.width = width
        self._mask = mask_for_width(width)
        self.saturate = saturate
        self.name = name
        self._q = 0

    @property
    def q(self) -> int:
        """Current count."""
        return self._q

    def tick(self, enable: bool = True) -> int:
        """Advance one clock; increments when ``enable``.  Returns count."""
        if enable:
            if self._q == self._mask:
                self._q = self._mask if self.saturate else 0
            else:
                self._q += 1
        return self._q

    def clear(self) -> None:
        """Synchronous clear."""
        self._q = 0

    @property
    def n_flip_flops(self) -> int:
        """Sequential cost: one flip-flop per bit."""
        return self.width

    def __repr__(self) -> str:
        return f"Counter({self.name}, width={self.width}, q={self._q})"


class ShiftRegister:
    """A bank of ``depth`` registers of ``width`` bits shifting as a queue.

    ``shift_in(v)`` models the DTC history update ``N_one1 <- N_one2;
    N_one2 <- N_one3; N_one3 <- v`` (index 0 is the oldest entry).
    """

    def __init__(self, width: int, depth: int, name: str = "shreg"):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.name = name
        self._regs = [Register(width, name=f"{name}[{i}]") for i in range(depth)]

    def shift_in(self, value: int) -> None:
        """Shift every stage towards index 0 and load ``value`` at the end."""
        for i in range(self.depth - 1):
            self._regs[i].load(self._regs[i + 1].q)
        self._regs[-1].load(value)

    def taps(self) -> "tuple[int, ...]":
        """All stage outputs, oldest first."""
        return tuple(r.q for r in self._regs)

    def __getitem__(self, i: int) -> int:
        return self._regs[i].q

    def reset(self) -> None:
        """Reset every stage."""
        for r in self._regs:
            r.reset()

    @property
    def n_flip_flops(self) -> int:
        """Sequential cost of the whole bank."""
        return self.width * self.depth

    def __repr__(self) -> str:
        return f"ShiftRegister({self.name}, width={self.width}, depth={self.depth})"


class Mux:
    """A combinational ``n``-way multiplexer over equal-width inputs."""

    def __init__(self, n_inputs: int, width: int, name: str = "mux"):
        if n_inputs < 2:
            raise ValueError(f"n_inputs must be >= 2, got {n_inputs}")
        self.n_inputs = n_inputs
        self.width = width
        self._mask = mask_for_width(width)
        self.name = name

    def select(self, inputs: "tuple[int, ...] | list[int]", sel: int) -> int:
        """Return ``inputs[sel]`` (range-checked, width-truncated)."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name}: expected {self.n_inputs} inputs, got {len(inputs)}"
            )
        if not 0 <= sel < self.n_inputs:
            raise ValueError(f"{self.name}: select {sel} out of range")
        return int(inputs[sel]) & self._mask

    def __repr__(self) -> str:
        return f"Mux({self.name}, n_inputs={self.n_inputs}, width={self.width})"
