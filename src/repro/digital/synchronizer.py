"""Clock-domain crossing model for the asynchronous comparator output.

Paper Sec. III-C: "Since the input signal is not synchronous, and
metastability can occur whether an asynchronous event is sampled by the
DTC, an internal register ``In_reg`` is placed to make data-flow
synchronous with clock."

The model samples a continuous-time (dense-rate) bit stream at the DTC
clock instants through a chain of flip-flops; optionally, samples falling
inside a small aperture around an input transition resolve to a random
value, which is how metastability manifests at the system level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Synchronizer", "clock_sample_indices", "n_whole_clocks", "sample_at_clock"]


def n_whole_clocks(n_samples: int, fs: float, clock_hz: float) -> int:
    """Number of whole ``clock_hz`` periods covered by ``n_samples`` at ``fs``.

    The shared definition used by the encoders and the synchronizer: the
    arithmetic (``floor((n / fs) * clock_hz)``, in that association) must be
    identical everywhere or chunked and one-shot paths disagree on the
    clock count for pathological rate ratios.
    """
    if fs <= 0 or clock_hz <= 0:
        raise ValueError("fs and clock_hz must be positive")
    return int(np.floor((n_samples / fs) * clock_hz))


def clock_sample_indices(
    n_samples: int,
    fs: float,
    clock_hz: float,
    n_clocks: "int | None" = None,
    start_clock: int = 0,
) -> np.ndarray:
    """Dense-sample index captured at each rising clock edge.

    Clock edge ``k`` (1-based) falls at time ``k / clock_hz`` and captures
    the dense sample active just before it: ``ceil(k * fs / clock_hz - eps)
    - 1``, clipped to ``[0, n_samples - 1]``.  The epsilon keeps exact rate
    ratios (e.g. equal rates) transparent in the face of floating-point
    rounding.

    ``start_clock`` selects a window of edges ``start_clock + 1 ..
    start_clock + n_clocks`` — the streaming encoders use it to resume the
    edge sequence mid-signal with indices identical to a one-shot run.
    ``n_clocks`` defaults to every remaining whole clock period.
    """
    max_clocks = n_whole_clocks(n_samples, fs, clock_hz)
    if not 0 <= start_clock <= max_clocks:
        raise ValueError(
            f"start_clock={start_clock} out of range [0, {max_clocks}]"
        )
    if n_clocks is None:
        n_clocks = max_clocks - start_clock
    elif start_clock + n_clocks > max_clocks:
        raise ValueError(
            f"n_clocks={n_clocks} from clock {start_clock} exceeds the "
            f"{max_clocks} whole clock periods available"
        )
    edges = np.ceil(
        np.arange(start_clock + 1, start_clock + n_clocks + 1) * (fs / clock_hz)
        - 1e-9
    ).astype(np.int64) - 1
    return np.clip(edges, 0, n_samples - 1)


def sample_at_clock(
    dense_bits: np.ndarray, dense_fs: float, clock_hz: float, n_clocks: "int | None" = None
) -> np.ndarray:
    """Sample a dense {0,1} stream at rising clock edges.

    Clock edge ``k`` (k = 1..n) falls at time ``k / clock_hz`` and captures
    the most recent dense sample (zero-order hold of the comparator
    output).  Returns a uint8 array of length ``n_clocks`` (defaulting to
    the number of whole clock periods covered by the input).
    """
    dense_bits = np.asarray(dense_bits)
    if dense_fs <= 0 or clock_hz <= 0:
        raise ValueError("dense_fs and clock_hz must be positive")
    max_clocks = n_whole_clocks(dense_bits.size, dense_fs, clock_hz)
    if n_clocks is None:
        n_clocks = max_clocks
    elif n_clocks > max_clocks:
        raise ValueError(
            f"n_clocks={n_clocks} exceeds the {max_clocks} whole clock periods available"
        )
    edges = clock_sample_indices(dense_bits.size, dense_fs, clock_hz, n_clocks=n_clocks)
    return dense_bits[edges].astype(np.uint8)


@dataclass
class Synchronizer:
    """An ``n_stages`` flip-flop synchronizer with a metastability model.

    Attributes
    ----------
    n_stages:
        Flip-flops in the chain.  The paper uses a single ``In_reg``;
         2 is the conventional double-flop.  Each stage adds one clock
        cycle of latency.
    metastability_window_s:
        Aperture around an input transition within which the sampled value
        is unresolved.  With the default 0 the synchronizer is ideal.
    """

    n_stages: int = 1
    metastability_window_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.metastability_window_s < 0:
            raise ValueError("metastability_window_s must be non-negative")

    @property
    def latency_clocks(self) -> int:
        """Pipeline latency introduced by the chain."""
        return self.n_stages

    @property
    def n_flip_flops(self) -> int:
        """Sequential cost (for the hardware model)."""
        return self.n_stages

    def synchronize(
        self,
        dense_bits: np.ndarray,
        dense_fs: float,
        clock_hz: float,
        rng: "np.random.Generator | None" = None,
        n_clocks: "int | None" = None,
    ) -> np.ndarray:
        """Sample ``dense_bits`` at ``clock_hz`` through the FF chain.

        Returns the synchronized stream, same length as the raw sampled
        stream: the first ``n_stages - 1`` outputs are the reset value 0
        and the rest are the sampled values delayed by the chain.
        """
        raw = sample_at_clock(dense_bits, dense_fs, clock_hz, n_clocks=n_clocks)

        if self.metastability_window_s > 0:
            if rng is None:
                raise ValueError("metastability_window_s > 0 requires an rng")
            raw = self._apply_metastability(raw, dense_bits, dense_fs, clock_hz, rng)

        if self.n_stages == 1:
            return raw
        delay = self.n_stages - 1
        out = np.zeros_like(raw)
        out[delay:] = raw[: raw.size - delay]
        return out

    def _apply_metastability(
        self,
        sampled: np.ndarray,
        dense_bits: np.ndarray,
        dense_fs: float,
        clock_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Randomise samples whose clock edge is within the aperture of a transition."""
        dense_bits = np.asarray(dense_bits)
        transitions = np.flatnonzero(np.diff(dense_bits.astype(np.int8)) != 0) + 1
        if transitions.size == 0:
            return sampled
        transition_times = transitions / dense_fs
        edge_times = np.arange(1, sampled.size + 1) / clock_hz
        out = sampled.copy()
        # For each clock edge find the nearest transition time.
        idx = np.searchsorted(transition_times, edge_times)
        for k, t in enumerate(edge_times):
            best = np.inf
            if idx[k] < transition_times.size:
                best = min(best, abs(transition_times[idx[k]] - t))
            if idx[k] > 0:
                best = min(best, abs(transition_times[idx[k] - 1] - t))
            if best <= self.metastability_window_s:
                out[k] = rng.integers(0, 2)
        return out
