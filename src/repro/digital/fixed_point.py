"""Fixed-point arithmetic helpers for the hardware DTC model.

The D-ATC predictor weights (1, 0.65, 0.35) are real numbers; in the
synthesized DTC they become binary fractions.  This module provides the
Q-format conversion used by the cycle-accurate model and documents a happy
numerical accident the implementation exploits: in Q8,

``round(1.00 * 256) + round(0.65 * 256) + round(0.35 * 256)
  = 256 + 166 + 90 = 512 = 2 * 256``

so the paper's ``/ 2`` denominator (the weights sum to 2) is exactly a
9-bit right shift — the weighted average needs no divider.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "to_fixed",
    "from_fixed",
    "quantize_weights",
    "FixedWeights",
    "DEFAULT_WEIGHT_FRAC_BITS",
]

DEFAULT_WEIGHT_FRAC_BITS = 8


def to_fixed(value: float, frac_bits: int) -> int:
    """Round a real value to an unsigned fixed-point integer.

    ``value`` must be non-negative (the DTC datapath is unsigned
    throughout: counts of ones and positive weights).
    """
    if frac_bits < 0:
        raise ValueError(f"frac_bits must be non-negative, got {frac_bits}")
    if value < 0:
        raise ValueError(f"unsigned fixed point requires value >= 0, got {value}")
    return int(round(value * (1 << frac_bits)))


def from_fixed(raw: int, frac_bits: int) -> float:
    """Convert a fixed-point integer back to a float."""
    if frac_bits < 0:
        raise ValueError(f"frac_bits must be non-negative, got {frac_bits}")
    return raw / float(1 << frac_bits)


def quantize_weights(
    weights: "tuple[float, ...]", frac_bits: int = DEFAULT_WEIGHT_FRAC_BITS
) -> "tuple[int, ...]":
    """Quantise predictor weights to integers in Q(frac_bits)."""
    return tuple(to_fixed(w, frac_bits) for w in weights)


@dataclass(frozen=True)
class FixedWeights:
    """The quantised predictor weights plus the shift implementing ``/2``.

    Attributes
    ----------
    w1, w2, w3:
        Integer weights for the oldest, middle, and newest frame counts
        (paper order: ``W_F1 = 0.35``, ``W_F2 = 0.65``, ``W_F3 = 1``).
    frac_bits:
        Q-format fractional bits used for the weights.
    shift:
        Right shift applied to the weighted sum; equals
        ``frac_bits + 1`` because the paper divides the sum by 2.
    """

    w1: int
    w2: int
    w3: int
    frac_bits: int = DEFAULT_WEIGHT_FRAC_BITS

    def __post_init__(self) -> None:
        for name, w in (("w1", self.w1), ("w2", self.w2), ("w3", self.w3)):
            if w < 0:
                raise ValueError(f"{name} must be non-negative, got {w}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be non-negative, got {self.frac_bits}")

    @property
    def shift(self) -> int:
        """Right shift implementing the ``/ 2`` of paper Listing 1."""
        return self.frac_bits + 1

    @classmethod
    def from_floats(
        cls,
        weights: "tuple[float, float, float]" = (0.35, 0.65, 1.0),
        frac_bits: int = DEFAULT_WEIGHT_FRAC_BITS,
    ) -> "FixedWeights":
        """Quantise the paper's float weights (oldest first)."""
        w1, w2, w3 = quantize_weights(weights, frac_bits)
        return cls(w1=w1, w2=w2, w3=w3, frac_bits=frac_bits)

    def average(self, n_one1: int, n_one2: int, n_one3: int) -> int:
        """Integer weighted average: ``(w3*n3 + w2*n2 + w1*n1) >> shift``.

        This is the exact arithmetic of the synthesized block; the
        behavioural encoder reproduces it bit-for-bit in ``quantized``
        mode.
        """
        acc = self.w3 * n_one3 + self.w2 * n_one2 + self.w1 * n_one1
        return acc >> self.shift

    def average_float(self, n_one1: float, n_one2: float, n_one3: float) -> float:
        """The same average without truncation, for error analysis."""
        acc = self.w3 * n_one3 + self.w2 * n_one2 + self.w1 * n_one1
        return acc / float(1 << self.shift)

    def max_error_vs(self, weights: "tuple[float, float, float]", frame_size: int) -> float:
        """Worst-case |quantised - ideal| average over a frame.

        Bounds the deviation introduced by Q-format rounding plus the final
        truncating shift, for counts in ``[0, frame_size]``.  Used by tests
        to show 8 fractional bits are sufficient for every legal frame
        size.
        """
        scale = float(1 << self.frac_bits)
        coeff_err = (
            abs(self.w1 / scale - weights[0])
            + abs(self.w2 / scale - weights[1])
            + abs(self.w3 / scale - weights[2])
        )
        # /2 from the weight-sum denominator, +1 for the floor of the shift.
        return coeff_err * frame_size / 2.0 + 1.0
