"""The precomputed Intervals look-up table of the DTC.

Paper Eqn. (2) defines 16 interval levels as fixed fractions of the frame
size::

    interval_level_15 = 0.48 * frame_size
    interval_level_14 = 0.45 * frame_size
    ...
    interval_level_1  = 0.06 * frame_size
    interval_level_0  = 0.03 * frame_size

i.e. ``interval_level_i = 0.03 * (i + 1) * frame_size``.  The paper's
implementation note: "instead of multiplying constant numbers ... we
considered a look-up table which stores the precalculated results of the
products of Eqn. (2) with all possible frame_size to save area and
computation time."  For the four legal frame sizes (100, 200, 400, 800)
every product is an exact integer (multiples of 3, 6, 12, 24), so the LUT
is exact — no rounding is involved.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FRAME_SIZES",
    "N_INTERVALS",
    "INTERVAL_FRACTION_STEP",
    "interval_fractions",
    "interval_levels",
    "IntervalLUT",
]

FRAME_SIZES = (100, 200, 400, 800)
N_INTERVALS = 16
INTERVAL_FRACTION_STEP = 0.03


def interval_fractions(n_intervals: int = N_INTERVALS, step: float = INTERVAL_FRACTION_STEP) -> np.ndarray:
    """The fractions 0.03, 0.06, ..., 0.48 of Eqn. (2)."""
    if n_intervals < 2:
        raise ValueError(f"n_intervals must be >= 2, got {n_intervals}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    return step * (np.arange(n_intervals) + 1)


def interval_levels(frame_size: int, n_intervals: int = N_INTERVALS, step: float = INTERVAL_FRACTION_STEP) -> np.ndarray:
    """Float interval levels for a given frame size (Eqn. 2)."""
    if frame_size < 1:
        raise ValueError(f"frame_size must be >= 1, got {frame_size}")
    return interval_fractions(n_intervals, step) * frame_size


class IntervalLUT:
    """The hardware LUT: integer interval levels per frame selector.

    ``entry(frame_selector)`` returns the 16 integer thresholds the
    Predictor compares ``AVR`` against.  Entries are precomputed at
    construction, exactly as the ROM in the synthesized block.
    """

    def __init__(
        self,
        frame_sizes: "tuple[int, ...]" = FRAME_SIZES,
        n_intervals: int = N_INTERVALS,
        step: float = INTERVAL_FRACTION_STEP,
    ):
        if not frame_sizes:
            raise ValueError("frame_sizes must not be empty")
        self.frame_sizes = tuple(int(f) for f in frame_sizes)
        self.n_intervals = n_intervals
        self.step = step
        self._table = {
            sel: tuple(
                int(round(v)) for v in interval_levels(size, n_intervals, step)
            )
            for sel, size in enumerate(self.frame_sizes)
        }

    def entry(self, frame_selector: int) -> "tuple[int, ...]":
        """All 16 integer interval levels for ``frame_selector``."""
        if frame_selector not in self._table:
            raise ValueError(
                f"frame_selector {frame_selector} out of range "
                f"[0, {len(self.frame_sizes)})"
            )
        return self._table[frame_selector]

    def level(self, frame_selector: int, index: int) -> int:
        """``interval_level_index`` for the selected frame size."""
        levels = self.entry(frame_selector)
        if not 0 <= index < self.n_intervals:
            raise ValueError(f"index {index} out of range [0, {self.n_intervals})")
        return levels[index]

    def frame_size(self, frame_selector: int) -> int:
        """The frame size selected by ``frame_selector``."""
        if not 0 <= frame_selector < len(self.frame_sizes):
            raise ValueError(
                f"frame_selector {frame_selector} out of range "
                f"[0, {len(self.frame_sizes)})"
            )
        return self.frame_sizes[frame_selector]

    @property
    def n_words(self) -> int:
        """ROM size in words (for the hardware cost model)."""
        return len(self.frame_sizes) * self.n_intervals

    @property
    def word_width_bits(self) -> int:
        """Bits needed to store the largest entry."""
        max_entry = max(max(levels) for levels in self._table.values())
        return max(1, int(max_entry).bit_length())
