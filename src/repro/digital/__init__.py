"""RTL-level digital substrate: fixed point, primitives, LUT, the DTC."""

from .dtc_rtl import DTC_PORT_LIST, DTCPorts, DTCRtl, DTCStepOutput
from .fixed_point import (
    DEFAULT_WEIGHT_FRAC_BITS,
    FixedWeights,
    from_fixed,
    quantize_weights,
    to_fixed,
)
from .lut import (
    FRAME_SIZES,
    INTERVAL_FRACTION_STEP,
    N_INTERVALS,
    IntervalLUT,
    interval_fractions,
    interval_levels,
)
from .primitives import Counter, Mux, Register, ShiftRegister, mask_for_width
from .synchronizer import (
    Synchronizer,
    clock_sample_indices,
    n_whole_clocks,
    sample_at_clock,
)
from .vcd import VCDSignal, dump_vcd, vcd_from_dtc_run

__all__ = [
    "DTC_PORT_LIST",
    "DTCPorts",
    "DTCRtl",
    "DTCStepOutput",
    "DEFAULT_WEIGHT_FRAC_BITS",
    "FixedWeights",
    "from_fixed",
    "quantize_weights",
    "to_fixed",
    "FRAME_SIZES",
    "INTERVAL_FRACTION_STEP",
    "N_INTERVALS",
    "IntervalLUT",
    "interval_fractions",
    "interval_levels",
    "Counter",
    "Mux",
    "Register",
    "ShiftRegister",
    "mask_for_width",
    "Synchronizer",
    "clock_sample_indices",
    "n_whole_clocks",
    "sample_at_clock",
    "VCDSignal",
    "dump_vcd",
    "vcd_from_dtc_run",
]
