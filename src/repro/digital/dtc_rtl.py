"""Cycle-accurate model of the Dynamic Threshold Controller (DTC).

This is a direct transcription of the synthesized block of paper Fig. 4 /
Listing 1, built from the primitives of :mod:`repro.digital.primitives`:

* ``In_reg`` — the input synchronizer flop for the asynchronous comparator
  output;
* a frame counter that raises ``End_of_frame`` every ``frame_size`` clocks
  (``frame_size`` is one of 100/200/400/800, chosen by the 2-bit
  ``Frame_selector``);
* the ``N_one`` ones-counter plus a 3-deep history of per-frame counts;
* the Predictor: the Q8 integer weighted average
  ``AVR = (256*N_one3 + 166*N_one2 + 90*N_one1) >> 9`` compared against
  the precomputed integer Intervals LUT, producing the 4-bit ``Set_Vth``.

The paper verified "that Verilog results perfectly match the Matlab
simulation outputs"; our equivalence is the same statement between this
model and :func:`repro.core.datc.datc_encode` in quantized mode, enforced
by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fixed_point import FixedWeights
from .lut import FRAME_SIZES, N_INTERVALS, IntervalLUT
from .primitives import Counter, Register, ShiftRegister

__all__ = ["DTCRtl", "DTCStepOutput", "DTCPorts", "DTC_PORT_LIST"]

# Port list of the IP as described in Sec. III-C: D_in + clock, the 4-bit
# Set_Vth vector, an 8-bit debug/state output, asynchronous reset, enable
# and the supply pins — 12 ports in total (paper Table I: "Number of
# ports 12").
DTC_PORT_LIST = (
    ("CLK", 1, "in"),
    ("RST", 1, "in"),
    ("EN", 1, "in"),
    ("D_in", 1, "in"),
    ("Frame_sel0", 1, "in"),
    ("Frame_sel1", 1, "in"),
    ("Set_Vth", 4, "out"),
    ("D_out", 1, "out"),
    ("End_of_frame", 1, "out"),
    ("Dbg_state", 8, "out"),
    ("VDD", 1, "supply"),
    ("GND", 1, "supply"),
)


@dataclass(frozen=True)
class DTCPorts:
    """Static port metadata (used by the hardware model and tests)."""

    ports: "tuple[tuple[str, int, str], ...]" = DTC_PORT_LIST

    @property
    def n_ports(self) -> int:
        """Number of named ports (paper Table I reports 12)."""
        return len(self.ports)

    @property
    def n_signal_bits(self) -> int:
        """Total signal bits excluding supplies."""
        return sum(width for _, width, kind in self.ports if kind != "supply")


@dataclass(frozen=True)
class DTCStepOutput:
    """Outputs of the DTC for one clock cycle.

    ``set_vth`` is the threshold level *in effect during* the cycle (the
    register value before any end-of-frame update), matching what the DAC
    applies to the comparator for that clock period.
    """

    set_vth: int
    d_out: int
    end_of_frame: bool
    n_one: int
    avr: "int | None" = None  # weighted average, only at end of frame


class DTCRtl:
    """The cycle-accurate Dynamic Threshold Controller.

    Parameters
    ----------
    frame_selector:
        2-bit selection of the frame length among :data:`FRAME_SIZES`.
    weights:
        Quantised predictor weights; defaults to the paper's
        (0.35, 0.65, 1.0) in Q8.
    initial_level:
        Reset value of the ``Set_Vth`` register.  The paper does not
        specify it; mid-scale (8) converges fastest from either direction.
    min_level:
        The Predictor's floor — Listing 1 never selects a level below 1,
        so the DAC threshold never collapses to 0 V (which would saturate
        the firing rate on noise alone).
    """

    COUNTER_WIDTH = 10  # paper: "10 bit signals are considered for wiring
    # all counters, shift registers and multiplexers"
    LEVEL_WIDTH = 4
    HISTORY_DEPTH = 3

    def __init__(
        self,
        frame_selector: int = 0,
        weights: "FixedWeights | None" = None,
        initial_level: int = 8,
        min_level: int = 1,
        lut: "IntervalLUT | None" = None,
    ):
        self.lut = lut if lut is not None else IntervalLUT()
        if not 0 <= frame_selector < len(self.lut.frame_sizes):
            raise ValueError(
                f"frame_selector {frame_selector} out of range "
                f"[0, {len(self.lut.frame_sizes)})"
            )
        if not 0 <= min_level < N_INTERVALS:
            raise ValueError(f"min_level {min_level} out of range [0, {N_INTERVALS})")
        if not min_level <= initial_level < N_INTERVALS:
            raise ValueError(
                f"initial_level {initial_level} out of range [{min_level}, {N_INTERVALS})"
            )
        self.frame_selector = frame_selector
        self.weights = weights if weights is not None else FixedWeights.from_floats()
        self.min_level = min_level
        self.initial_level = initial_level

        self.frame_size = self.lut.frame_size(frame_selector)
        self._intervals = self.lut.entry(frame_selector)

        # Sequential elements (Fig. 4).
        self.in_reg = Register(1, name="In_reg")
        self.frame_counter = Counter(self.COUNTER_WIDTH, name="frame_counter")
        self.ones_counter = Counter(self.COUNTER_WIDTH, name="ones_counter")
        self.history = ShiftRegister(
            self.COUNTER_WIDTH, self.HISTORY_DEPTH, name="N_one"
        )
        self.set_vth_reg = Register(
            self.LEVEL_WIDTH, reset_value=initial_level, name="Set_Vth"
        )
        self._cycles = 0

    # ------------------------------------------------------------------
    # Combinational predictor
    # ------------------------------------------------------------------
    def _predict_level(self, avr: int) -> int:
        """Listing 1: priority comparison of AVR against the interval LUT.

        ``if AVR >= interval_level_15: 15; elif ... >= interval_level_2: 2;
        else: min_level`` — levels 0 and 1 share the floor because the
        listing's final ``else`` clause assigns 1.
        """
        for level in range(N_INTERVALS - 1, self.min_level, -1):
            if avr >= self._intervals[level]:
                return level
        return self.min_level

    # ------------------------------------------------------------------
    # Clocked behaviour
    # ------------------------------------------------------------------
    def step(self, d_in: int, enable: bool = True) -> DTCStepOutput:
        """Advance one system-clock cycle.

        ``d_in`` is the raw asynchronous comparator bit; it is first
        captured by ``In_reg`` and the registered value drives the
        counters, exactly as in the block diagram.
        """
        if not enable:
            return DTCStepOutput(
                set_vth=self.set_vth_reg.q,
                d_out=self.in_reg.q,
                end_of_frame=False,
                n_one=self.ones_counter.q,
            )

        self.in_reg.load(1 if d_in else 0)
        d = self.in_reg.q

        level_in_effect = self.set_vth_reg.q

        self.ones_counter.tick(enable=bool(d))
        self.frame_counter.tick()

        end_of_frame = self.frame_counter.q >= self.frame_size
        avr = None
        if end_of_frame:
            self.history.shift_in(self.ones_counter.q)
            n_one1, n_one2, n_one3 = self.history.taps()
            avr = self.weights.average(n_one1, n_one2, n_one3)
            self.set_vth_reg.load(self._predict_level(avr))
            self.ones_counter.clear()
            self.frame_counter.clear()

        self._cycles += 1
        return DTCStepOutput(
            set_vth=level_in_effect,
            d_out=d,
            end_of_frame=end_of_frame,
            n_one=self.ones_counter.q,
            avr=avr,
        )

    def run(self, d_in: np.ndarray) -> "dict[str, np.ndarray]":
        """Run the controller over a whole ``d_in`` stream.

        Returns per-cycle traces: ``set_vth`` (level in effect each
        cycle), ``d_out``, ``end_of_frame`` and per-frame summaries
        ``frame_levels`` (level selected at each frame boundary) and
        ``frame_ones`` (ones count of each completed frame).
        """
        d_in = np.asarray(d_in).astype(np.uint8)
        n = d_in.size
        set_vth = np.empty(n, dtype=np.int64)
        d_out = np.empty(n, dtype=np.uint8)
        eof = np.zeros(n, dtype=bool)
        frame_levels = []
        frame_ones = []
        for i in range(n):
            out = self.step(int(d_in[i]))
            set_vth[i] = out.set_vth
            d_out[i] = out.d_out
            eof[i] = out.end_of_frame
            if out.end_of_frame:
                # After the end-of-frame shift the newest history tap holds
                # exactly the ones count of the frame that just closed.
                frame_ones.append(self.history[self.HISTORY_DEPTH - 1])
                frame_levels.append(self.set_vth_reg.q)
        return {
            "set_vth": set_vth,
            "d_out": d_out,
            "end_of_frame": eof,
            "frame_levels": np.asarray(frame_levels, dtype=np.int64),
            "frame_ones": np.asarray(frame_ones, dtype=np.int64),
        }

    def reset(self) -> None:
        """Asynchronous reset (RST pin)."""
        self.in_reg.reset()
        self.frame_counter.clear()
        self.ones_counter.clear()
        self.history.reset()
        self.set_vth_reg.reset()
        self._cycles = 0

    @property
    def cycles_elapsed(self) -> int:
        """Clock cycles executed since reset."""
        return self._cycles

    @property
    def n_flip_flops(self) -> int:
        """Total sequential bits (used by the hardware cost model)."""
        return (
            self.in_reg.n_flip_flops
            + self.frame_counter.n_flip_flops
            + self.ones_counter.n_flip_flops
            + self.history.n_flip_flops
            + self.set_vth_reg.n_flip_flops
        )
