"""Declarative experiment API: one canonical, hashable description per run.

Everything the library evaluates — a figure, a sweep point, a dataset
shard, a streamed session — is some composition of the same four stages:
encode (ATC/D-ATC), optionally transport (IR-UWB link), decode
(rate / hybrid reconstruction), and score (correlation against ground
truth).  Historically each entry point re-plumbed those stages with its
own positional arguments; this module replaces that zoo with a frozen,
composable **spec tree**:

``ExperimentSpec``
    ``EncoderSpec`` (scheme + ``ATCConfig``/``DATCConfig``) +
    optional ``LinkSpec`` (a ``LinkConfig``) +
    ``DecoderSpec`` (``fs_out``, ``window_s``, optional ``dac_bits``
    override) + ``ScoreSpec`` (metric).

A spec is

* **serialisable** — ``to_dict()`` / ``from_dict()`` round-trip through
  plain JSON types, so a spec can live in a file, a CLI flag, or an IPC
  message;
* **content-addressed** — ``spec.key()`` is a SHA-256 over the canonical
  JSON form, identical across processes, platforms and Python versions
  (no dependence on ``PYTHONHASHSEED`` or dict order), which is what the
  persistent :class:`~repro.runtime.store.ResultStore` and the future
  multi-node dispatcher key on;
* **composable** — ``spec.replace(...)`` / ``spec.replace_at(path, v)``
  derive new operating points, which is how one generic
  :meth:`Experiment.sweep` subsumes the old per-parameter sweep
  functions.

The :class:`Experiment` facade executes a spec: ``run(patterns)`` rides
the fully batched ``encode_batch -> reconstruct_batch -> stacked
correlation`` pipeline, ``sweep(pattern, axis, values)`` substitutes
values into the spec tree (or applies one of the *data axes*,
``"input.snr_db"`` / ``"stream.drop_prob"``) and decodes the whole grid
in one batched call, ``dataset_sweep`` shards a pattern grid over the
execution runtime, and ``pipeline(fs)`` / ``stream(source, fs)`` drive
the live :class:`~repro.runtime.ingest.AsyncStreamingPipeline`.  All
paths are bit-identical to the legacy entry points they replace (which
survive as deprecated wrappers over this module).

Attach a :class:`~repro.runtime.store.ResultStore` and every sweep /
dataset evaluation is memoised on ``(spec.key(), data fingerprint)``:
a warm re-run performs zero re-evaluations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import partial

import numpy as np

from .core.config import ATCConfig, DATCConfig
from .core.events import EventStream
from .core.pipeline import (
    DEFAULT_FS_OUT,
    DEFAULT_WINDOW_S,
    PipelineResult,
    _pattern_envelope,
    _receive_and_score,
)
from .core.atc import atc_encode
from .core.datc import datc_encode
from .core.encoders import encode_batch
from .runtime.executors import default_jobs, map_jobs, plan_shards, resolve_backend
from .runtime.ingest import AsyncStreamingPipeline
from .runtime.store import ResultStore, fingerprint_value
from .rx.correlation import aligned_correlation_percent_batch
from .rx.decoders import reconstruct_batch
from .signals.dataset import DatasetSpec, Pattern
from .uwb.channel import UWBChannel
from .uwb.link import LinkConfig, simulate_link, simulate_link_batch

__all__ = [
    "EncoderSpec",
    "LinkSpec",
    "DecoderSpec",
    "ScoreSpec",
    "ExperimentSpec",
    "Experiment",
    "SweepPoint",
    "LinkSweepPoint",
    "DatasetSweepResult",
    "DATA_AXES",
    "pattern_fingerprint",
    "dataset_fingerprint",
    "dataset_point_fingerprint",
]

SPEC_FORMAT_VERSION = 1

# Sweep axes that vary the *input data* rather than the spec tree; the
# value is the axis's default RNG seed (kept from the legacy sweeps so the
# deprecated wrappers stay bit-identical).
DATA_AXES = {"input.snr_db": 11, "stream.drop_prob": 7}

_CONFIG_TYPES = {
    "ATCConfig": ATCConfig,
    "DATCConfig": DATCConfig,
    "LinkConfig": LinkConfig,
}


# ----------------------------------------------------------------------
# Canonical (de)serialisation helpers
# ----------------------------------------------------------------------
def _typed_to_dict(obj) -> dict:
    """A flat dataclass (config) as a typed dict of JSON-able values."""
    out = {"type": type(obj).__name__}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, (np.integer, np.floating, np.bool_)):
            value = value.item()
        out[f.name] = value
    return out


def _typed_from_dict(data: dict):
    """Inverse of :func:`_typed_to_dict` (lists back to tuples)."""
    data = dict(data)
    type_name = data.pop("type", None)
    if type_name not in _CONFIG_TYPES:
        raise ValueError(
            f"unknown config type {type_name!r}; expected one of "
            f"{sorted(_CONFIG_TYPES)}"
        )
    kwargs = {
        k: tuple(v) if isinstance(v, list) else v for k, v in data.items()
    }
    return _CONFIG_TYPES[type_name](**kwargs)


def _normalise_numbers(data):
    """Numerics coerced to float so ``100`` and ``100.0`` hash identically.

    Python compares ``DecoderSpec(fs_out=100) == DecoderSpec(fs_out=100.0)``
    equal, so their keys must match too (the CLI feeds ``json.loads`` ints
    where library callers pass floats).  Bools stay bools; ints are exact
    as floats well past any field's realistic range.
    """
    if isinstance(data, bool):
        return data
    if isinstance(data, (int, float)):
        return float(data)
    if isinstance(data, dict):
        return {k: _normalise_numbers(v) for k, v in data.items()}
    if isinstance(data, list):
        return [_normalise_numbers(v) for v in data]
    return data


def _canonical_json(data) -> str:
    """The canonical serialised form ``key()`` hashes.

    ``sort_keys`` removes dict-order dependence, numerics are normalised
    (see :func:`_normalise_numbers`) and JSON floats use ``repr``
    (shortest round-trip, stable on every CPython/NumPy since 3.1), so
    the digest is identical across processes, spawn-mode workers,
    platforms and Python versions.
    """
    return json.dumps(
        _normalise_numbers(data), sort_keys=True, separators=(",", ":")
    )


# ----------------------------------------------------------------------
# The spec tree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EncoderSpec:
    """Transmitter stage: encoding scheme + its configuration.

    ``config=None`` selects the scheme's paper operating point
    (``ATCConfig()`` / ``DATCConfig()``).
    """

    scheme: str = "datc"
    config: "ATCConfig | DATCConfig | None" = None

    def __post_init__(self) -> None:
        if self.scheme not in ("atc", "datc"):
            raise ValueError(
                f"scheme must be 'atc' or 'datc', got {self.scheme!r}"
            )
        expected = ATCConfig if self.scheme == "atc" else DATCConfig
        if self.config is None:
            object.__setattr__(self, "config", expected())
        if not isinstance(self.config, expected):
            raise TypeError(
                f"scheme {self.scheme!r} needs a {expected.__name__}, "
                f"got {type(self.config).__name__}"
            )

    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        return {"scheme": self.scheme, "config": _typed_to_dict(self.config)}

    @classmethod
    def from_dict(cls, data: dict) -> "EncoderSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            scheme=data["scheme"], config=_typed_from_dict(data["config"])
        )


@dataclass(frozen=True)
class LinkSpec:
    """Optional transport stage: the behavioural IR-UWB link."""

    config: LinkConfig = LinkConfig()

    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        return {"config": _typed_to_dict(self.config)}

    @classmethod
    def from_dict(cls, data: dict) -> "LinkSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(config=_typed_from_dict(data["config"]))


@dataclass(frozen=True)
class DecoderSpec:
    """Receiver stage: reconstruction grid and smoothing window.

    ``dac_bits=None`` decodes D-ATC levels at the *encoder's* DAC
    resolution (the usual matched-transceiver case); an explicit value
    overrides it, e.g. to study a mismatched receiver.
    """

    fs_out: float = DEFAULT_FS_OUT
    window_s: float = DEFAULT_WINDOW_S
    dac_bits: "int | None" = None

    def __post_init__(self) -> None:
        if self.fs_out <= 0:
            raise ValueError(f"fs_out must be positive, got {self.fs_out}")
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}"
            )
        if self.dac_bits is not None and self.dac_bits < 1:
            raise ValueError(
                f"dac_bits must be >= 1 or None, got {self.dac_bits}"
            )

    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        return {
            "fs_out": self.fs_out,
            "window_s": self.window_s,
            "dac_bits": self.dac_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecoderSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class ScoreSpec:
    """Scoring stage: the figure-of-merit computed against ground truth."""

    metric: str = "correlation_pct"

    def __post_init__(self) -> None:
        if self.metric != "correlation_pct":
            raise ValueError(
                "the only supported metric is 'correlation_pct', got "
                f"{self.metric!r}"
            )

    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        return {"metric": self.metric}

    @classmethod
    def from_dict(cls, data: dict) -> "ScoreSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class ExperimentSpec:
    """The complete, hashable description of one experiment.

    Compose the four stage specs; derive variants with :meth:`replace` /
    :meth:`replace_at`; serialise with :meth:`to_dict`; address results
    with :meth:`key`.
    """

    encoder: EncoderSpec = EncoderSpec()
    link: "LinkSpec | None" = None
    decoder: DecoderSpec = DecoderSpec()
    score: ScoreSpec = ScoreSpec()

    # -- convenience -----------------------------------------------------
    @classmethod
    def for_scheme(
        cls,
        scheme: str,
        config: "ATCConfig | DATCConfig | None" = None,
        fs_out: float = DEFAULT_FS_OUT,
        window_s: float = DEFAULT_WINDOW_S,
        link: "LinkConfig | None" = None,
    ) -> "ExperimentSpec":
        """The spec matching the legacy ``run_*(pattern, config, ...)`` calls."""
        return cls(
            encoder=EncoderSpec(scheme=scheme, config=config),
            link=LinkSpec(config=link) if link is not None else None,
            decoder=DecoderSpec(fs_out=fs_out, window_s=window_s),
        )

    @property
    def scheme(self) -> str:
        """Shorthand for ``encoder.scheme``."""
        return self.encoder.scheme

    @property
    def decode_dac_bits(self) -> int:
        """Effective receiver DAC resolution (decoder override or encoder's)."""
        if self.decoder.dac_bits is not None:
            return self.decoder.dac_bits
        if isinstance(self.encoder.config, DATCConfig):
            return self.encoder.config.dac_bits
        return 4

    @property
    def decode_vref(self) -> float:
        """Receiver DAC reference (from the encoder config; 1 V for ATC)."""
        if isinstance(self.encoder.config, DATCConfig):
            return self.encoder.config.vref
        return 1.0

    # -- derivation ------------------------------------------------------
    def replace(self, **changes) -> "ExperimentSpec":
        """A new spec with top-level stages replaced (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    def replace_at(self, path: str, value) -> "ExperimentSpec":
        """A new spec with the field at dotted ``path`` replaced.

        ``path`` addresses the spec tree, e.g. ``"encoder.config.vth"``,
        ``"encoder.config"`` (a whole config object),
        ``"decoder.fs_out"`` or ``"link"``.
        """

        def substitute(obj, parts):
            name = parts[0]
            names = {f.name for f in dataclasses.fields(obj)}
            if name not in names:
                raise ValueError(
                    f"{type(obj).__name__} has no field {name!r}; "
                    f"choose from {sorted(names)}"
                )
            if len(parts) == 1:
                return dataclasses.replace(obj, **{name: value})
            return dataclasses.replace(
                obj, **{name: substitute(getattr(obj, name), parts[1:])}
            )

        parts = path.split(".")
        if not all(parts):
            raise ValueError(f"invalid spec path {path!r}")
        return substitute(self, parts)

    # -- serialisation / addressing --------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "version": SPEC_FORMAT_VERSION,
            "encoder": self.encoder.to_dict(),
            "link": self.link.to_dict() if self.link is not None else None,
            "decoder": self.decoder.to_dict(),
            "score": self.score.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        version = data.get("version", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported spec format version {version!r} "
                f"(this library writes version {SPEC_FORMAT_VERSION})"
            )
        return cls(
            encoder=EncoderSpec.from_dict(data["encoder"]),
            link=(
                LinkSpec.from_dict(data["link"])
                if data.get("link") is not None
                else None
            ),
            decoder=DecoderSpec.from_dict(data["decoder"]),
            score=ScoreSpec.from_dict(data["score"]),
        )

    def to_json(self, indent: "int | None" = 2) -> str:
        """Human-editable JSON (the ``--spec spec.json`` file format)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def key(self) -> str:
        """Stable content hash of this spec (SHA-256 hex digest).

        Identical for equal specs in any process, on any platform, under
        any Python version — the address the result store and the
        multi-node dispatcher use.
        """
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode()
        ).hexdigest()


# ----------------------------------------------------------------------
# Result containers (the sweeps' public currency)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep: parameter, correlation, events."""

    parameter: float
    correlation_pct: float
    n_events: int
    n_symbols: int


@dataclass(frozen=True)
class LinkSweepPoint:
    """One operating point of a physical-link sweep."""

    erasure_prob: float
    event_delivery_ratio: float
    level_error_ratio: float
    n_pulses: int
    tx_energy_j: float


@dataclass(frozen=True)
class DatasetSweepResult:
    """Per-pattern metrics of one scheme across the dataset (Fig. 5)."""

    scheme: str
    pattern_ids: np.ndarray
    correlations_pct: np.ndarray
    n_events: np.ndarray

    @property
    def correlation_range(self) -> "tuple[float, float]":
        """(min, max) correlation across patterns."""
        return float(self.correlations_pct.min()), float(self.correlations_pct.max())

    @property
    def correlation_mean(self) -> float:
        """Mean correlation across patterns."""
        return float(self.correlations_pct.mean())

    @property
    def event_spread(self) -> float:
        """Coefficient of variation of the event counts (stability metric).

        The paper: "the dynamic thresholding technique is even stable as a
        function of the number of transmitted events for different
        patterns while in the constant thresholding it is not".
        """
        mean = self.n_events.mean()
        return float(self.n_events.std() / mean) if mean > 0 else float("inf")


# ----------------------------------------------------------------------
# Data fingerprints (the store's second key half)
# ----------------------------------------------------------------------
def pattern_fingerprint(pattern: Pattern) -> str:
    """Content hash of the evaluation-relevant part of a pattern."""
    return fingerprint_value({"fs": pattern.fs, "emg": pattern.emg})


def dataset_fingerprint(dataset: DatasetSpec) -> str:
    """Content hash of a dataset's generating spec (subjects included)."""
    return fingerprint_value(dataset)


def dataset_point_fingerprint(
    dataset: "DatasetSpec | str", pattern_id: int
) -> str:
    """Content hash of one *lazily generated* dataset pattern.

    Hashes the dataset's generating spec plus the id instead of the
    synthesised samples, so a warm sweep skips pattern synthesis too.
    ``dataset`` may be a pre-computed :func:`dataset_fingerprint` digest,
    letting a sweep hash the (large) spec once instead of per pattern.
    """
    base = dataset if isinstance(dataset, str) else dataset_fingerprint(dataset)
    return fingerprint_value({"dataset": base, "pattern_id": int(pattern_id)})


def _data_point_fingerprint(
    base: str, axis: str, value: float, seed: int, index: int
) -> str:
    """Fingerprint of a data-axis sweep point (pattern + transform).

    The grid ``index`` is part of the identity: the per-point RNG seeds
    with ``(seed, index)`` (the legacy layout the deprecated wrappers are
    bit-identical to), so the same value at a different grid position is
    a *different* noise realisation and must not share a cache entry.
    """
    return fingerprint_value(
        {
            "base": base,
            "axis": axis,
            "value": float(value),
            "seed": int(seed),
            "index": int(index),
        }
    )


# ----------------------------------------------------------------------
# Grid workers.  Module-level (bound with functools.partial) so every
# fan-out pickles under the process backend's spawn start method.
# ----------------------------------------------------------------------
def _encode_for_spec(
    spec: ExperimentSpec, emg: np.ndarray, fs: float
) -> EventStream:
    """One spec-axis sweep point: encode ``emg`` under the point's spec."""
    encode = atc_encode if spec.encoder.scheme == "atc" else datc_encode
    return encode(emg, fs, spec.encoder.config)[0]


def _transport_streams(
    streams: "list[EventStream]", specs: "list[ExperimentSpec]"
) -> "list[EventStream]":
    """Carry each TX stream over its spec's link (``link=None`` = direct).

    A uniform link rides one :func:`simulate_link_batch` call; mixed
    grids (a sweep over link parameters) fall back to per-stream
    :func:`simulate_link`.  The spec tree has no noisy-channel field, so
    transport is the *ideal* channel — deterministic, hence cacheable —
    and the received events equal the transmitted ones; the stage still
    runs so link-bearing specs exercise the real modulate/demodulate
    path (and future channel-bearing specs slot in here).
    """
    links = [s.link.config if s.link is not None else None for s in specs]
    if all(link is None for link in links):
        return streams
    if None not in links and all(link == links[0] for link in links):
        results = simulate_link_batch(streams, links[0])
        return [r.rx_stream for r in results]
    return [
        stream if link is None else simulate_link(stream, link).rx_stream
        for stream, link in zip(streams, links)
    ]


def _evaluate_spec_pattern(
    pattern: Pattern, spec: ExperimentSpec
) -> PipelineResult:
    """One pattern end to end under ``spec`` (module-level: pickles for
    process workers).  Encode one-shot, transport over the spec's link if
    any, decode + score with the spec's decoder."""
    scheme = spec.encoder.scheme
    config = spec.encoder.config
    encode = atc_encode if scheme == "atc" else datc_encode
    stream, trace = encode(pattern.emg, pattern.fs, config)
    if spec.link is not None:
        stream = simulate_link(stream, spec.link.config).rx_stream
    return _receive_and_score(
        scheme,
        stream,
        trace,
        pattern,
        config,
        spec.decoder.fs_out,
        spec.decoder.window_s,
        spec.decoder.dac_bits,
    )


def _drop_events_point(
    item: "tuple[int, float]", stream: EventStream, seed: int
) -> EventStream:
    """One ``stream.drop_prob`` point: erase events with probability ``item[1]``."""
    i, p = item
    rng = np.random.default_rng((seed, i))
    keep = rng.random(stream.n_events) >= p
    return stream.drop_events(keep)


def _noisy_encode_point(
    item: "tuple[int, float]",
    spec: ExperimentSpec,
    emg: np.ndarray,
    fs: float,
    signal_power: float,
    seed: int,
) -> EventStream:
    """One ``input.snr_db`` point: add white noise at ``item[1]`` dB, then encode."""
    i, snr_db = item
    rng = np.random.default_rng((seed, i))
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    noisy = emg + np.sqrt(noise_power) * rng.standard_normal(emg.size)
    encode = atc_encode if spec.encoder.scheme == "atc" else datc_encode
    return encode(noisy, fs, spec.encoder.config)[0]


def _dataset_shard(
    ids: np.ndarray, dataset: DatasetSpec, spec: ExperimentSpec
) -> "tuple[np.ndarray, np.ndarray]":
    """Evaluate one contiguous shard of dataset patterns end to end.

    Generates the shard's patterns, runs the batched pipeline, and
    returns only the per-pattern summary arrays (correlation %, event
    counts) — the IPC payload of a multi-process dataset sweep stays a
    few hundred bytes per shard instead of full traces/reconstructions.
    Per-row results are bit-identical whatever the shard boundaries,
    because every batched stage is bit-identical per row.
    """
    patterns = [dataset.pattern(int(i)) for i in ids]
    results = _run_patterns(spec, patterns)
    return (
        np.array([r.correlation_pct for r in results]),
        np.array([r.n_events for r in results], dtype=np.int64),
    )


def _spec_key_worker(data: dict) -> str:
    """Rebuild a spec from its dict form and return its content hash.

    Exists so tests can assert ``spec.key()`` stability inside
    spawn-started worker processes.
    """
    return ExperimentSpec.from_dict(data).key()


# ----------------------------------------------------------------------
# The batched evaluation engine (previously run_batch's body)
# ----------------------------------------------------------------------
def _run_patterns(
    spec: ExperimentSpec,
    patterns: "list[Pattern]",
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[PipelineResult]":
    """Evaluate many patterns end to end under ``spec``, in pattern order.

    Both sides run through the batched 2-D engines when every pattern
    shares the same sampling rate and length (a dataset's always do): one
    ``encode_batch`` call, one batched link transport when the spec
    carries a :class:`LinkSpec`, one
    :func:`repro.rx.decoders.reconstruct_batch` decode of all streams,
    and one stacked-correlation call for the whole batch.  Ragged inputs
    fall back to the per-pattern path via
    :func:`repro.runtime.executors.map_jobs`.  Results are bit-identical
    on every path and backend.
    """
    if not patterns:
        return []
    scheme = spec.encoder.scheme
    config = spec.encoder.config
    fs_out = spec.decoder.fs_out
    window_s = spec.decoder.window_s

    fs = patterns[0].fs
    homogeneous = all(
        p.fs == fs and p.n_samples == patterns[0].n_samples for p in patterns
    )
    if not homogeneous:
        evaluate = partial(_evaluate_spec_pattern, spec=spec)
        return map_jobs(evaluate, patterns, jobs, backend=backend)

    emg = np.stack([p.emg for p in patterns])
    encoded = encode_batch(emg, fs, config)
    streams = _transport_streams(
        [stream for stream, _ in encoded], [spec] * len(encoded)
    )
    recons = reconstruct_batch(
        streams,
        scheme,
        config,
        fs_out=fs_out,
        window_s=window_s,
        dac_bits=spec.decoder.dac_bits,
    )
    references = np.stack(
        map_jobs(
            partial(_pattern_envelope, window_s=window_s),
            patterns,
            jobs,
            backend=backend,
        )
    )
    corrs = aligned_correlation_percent_batch(recons, references)
    return [
        PipelineResult(
            scheme=scheme,
            stream=streams[i],  # the received stream when a link is specced
            reconstruction=recons[i],
            fs_out=fs_out,
            correlation_pct=float(corrs[i]),
            trace=trace,
        )
        for i, (_, trace) in enumerate(encoded)
    ]


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class Experiment:
    """Executable view of an :class:`ExperimentSpec`.

    One object, every execution mode: batched evaluation (:meth:`run`),
    single-pattern evaluation (:meth:`run_one`, :meth:`evaluate`), the
    generic grid sweep (:meth:`sweep`), the sharded dataset sweep
    (:meth:`dataset_sweep`), the physical-link sweep (:meth:`link_sweep`)
    and live streaming (:meth:`pipeline` / :meth:`stream`).

    Attach a :class:`~repro.runtime.store.ResultStore` and the sweep
    paths are memoised on ``(spec.key(), data fingerprint)``: cached
    points are returned without re-encoding or re-decoding, bit-identical
    to a cold evaluation.
    """

    def __init__(
        self, spec: ExperimentSpec, store: "ResultStore | None" = None
    ) -> None:
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"spec must be an ExperimentSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self.store = store

    def __repr__(self) -> str:
        return (
            f"Experiment({self.spec.scheme!r}, key={self.spec.key()[:12]}, "
            f"store={'yes' if self.store is not None else 'no'})"
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        patterns: "list[Pattern]",
        jobs: "int | None" = None,
        backend: "str | None" = None,
    ) -> "list[PipelineResult]":
        """Evaluate many patterns through the fully batched pipeline."""
        return _run_patterns(self.spec, patterns, jobs=jobs, backend=backend)

    def run_one(self, pattern: Pattern) -> PipelineResult:
        """Evaluate one pattern end to end (the legacy ``run_atc``/``run_datc``),
        through the spec's link when it carries one."""
        return _evaluate_spec_pattern(pattern, self.spec)

    def evaluate(self, pattern: Pattern, parameter: float = 0.0) -> SweepPoint:
        """One pattern's cached scalar summary (store-aware).

        With a store attached the summary is fetched from / persisted to
        ``(spec.key(), pattern fingerprint)``; without one this is just
        :meth:`run_one` reduced to a :class:`SweepPoint`.
        """
        fp = None
        if self.store is not None:
            fp = pattern_fingerprint(pattern)
            cached = self.store.get(self.spec.key(), fp)
            if cached is not None:
                return self._point_from_arrays(float(parameter), cached)
        result = self.run_one(pattern)
        point = SweepPoint(
            parameter=float(parameter),
            correlation_pct=result.correlation_pct,
            n_events=result.n_events,
            n_symbols=result.n_symbols,
        )
        if self.store is not None:
            self.store.put(self.spec.key(), fp, self._point_arrays(point))
        return point

    # ------------------------------------------------------------------
    # The generic sweep
    # ------------------------------------------------------------------
    def sweep(
        self,
        pattern: Pattern,
        axis: str,
        values,
        jobs: "int | None" = None,
        backend: "str | None" = None,
        seed: "int | None" = None,
        parameter=None,
    ) -> "list[SweepPoint]":
        """Sweep one axis of the experiment over ``values`` on ``pattern``.

        ``axis`` is either a dotted spec path (``"encoder.config.vth"``,
        ``"encoder.config"`` with whole config objects as values,
        ``"decoder.dac_bits"``, ...) — each value is substituted via
        :meth:`ExperimentSpec.replace_at` — or one of the *data axes*:

        ``"input.snr_db"``
            White noise is added to the raw signal at the given SNR
            (relative to its mean square) before encoding.
        ``"stream.drop_prob"``
            Whole events of the encoded stream are erased with the given
            probability (the dominant OOK failure mode).

        Encoding fans out over ``jobs`` workers on the selected runtime
        ``backend``; the receiver side (reconstruction + correlation)
        runs once, batched across all points — heterogeneous decode
        configs included (per-row ``vref`` / ``dac_bits``).  ``seed``
        feeds the data axes' RNG (each axis keeps its legacy default).
        ``parameter`` maps a value to the number its point reports
        (default: ``float(value)``).

        With a store attached, each point is memoised under its own
        derived spec key (spec axes) or transform fingerprint (data
        axes); only missing points are evaluated.
        """
        values = list(values)
        if axis == "stream.drop_prob":
            for p in values:
                if not 0.0 <= float(p) < 1.0:
                    raise ValueError(
                        f"loss probability must be in [0, 1), got {p}"
                    )
        if not values:
            return []
        data_axis = axis in DATA_AXES
        if seed is None:
            seed = DATA_AXES.get(axis, 0)
        if data_axis:
            specs = [self.spec] * len(values)
            params = [float(v) for v in values]
        else:
            specs = [self.spec.replace_at(axis, v) for v in values]
            if parameter is None and not all(
                isinstance(v, (int, float, np.integer, np.floating))
                for v in values
            ):
                raise TypeError(
                    f"values on axis {axis!r} are not numeric; pass "
                    "parameter= to map each value to the number its "
                    "sweep point reports"
                )
            params = [float(v) for v in values] if parameter is None else []
        if parameter is not None:
            params = [float(parameter(v)) for v in values]

        points: "list[SweepPoint | None]" = [None] * len(values)
        fingerprints: "list[str | None]" = [None] * len(values)
        if self.store is not None:
            base_fp = pattern_fingerprint(pattern)
            for i, spec in enumerate(specs):
                fingerprints[i] = (
                    _data_point_fingerprint(
                        base_fp, axis, float(values[i]), seed, i
                    )
                    if data_axis
                    else base_fp
                )
                cached = self.store.get(spec.key(), fingerprints[i])
                if cached is not None:
                    points[i] = self._point_from_arrays(params[i], cached)

        todo = [i for i in range(len(values)) if points[i] is None]
        if todo:
            todo_specs = [specs[i] for i in todo]
            streams = _transport_streams(
                self._encode_points(
                    pattern, axis, values, specs, todo, seed, jobs, backend
                ),
                todo_specs,
            )
            corrs = self._decode_and_score(streams, todo_specs, pattern)
            for j, i in enumerate(todo):
                points[i] = SweepPoint(
                    parameter=params[i],
                    correlation_pct=float(corrs[j]),
                    n_events=streams[j].n_events,
                    n_symbols=streams[j].n_symbols,
                )
                if self.store is not None:
                    self.store.put(
                        specs[i].key(),
                        fingerprints[i],
                        self._point_arrays(points[i]),
                    )
        return points

    def _encode_points(
        self, pattern, axis, values, specs, todo, seed, jobs, backend
    ) -> "list[EventStream]":
        """Produce the event stream of every still-missing sweep point."""
        if axis == "stream.drop_prob":
            base = self.run_one(pattern)
            return map_jobs(
                partial(_drop_events_point, stream=base.stream, seed=seed),
                [(i, float(values[i])) for i in todo],
                jobs,
                backend=backend,
            )
        if axis == "input.snr_db":
            signal_power = float(np.mean(pattern.emg ** 2))
            return map_jobs(
                partial(
                    _noisy_encode_point,
                    spec=self.spec,
                    emg=pattern.emg,
                    fs=pattern.fs,
                    signal_power=signal_power,
                    seed=seed,
                ),
                [(i, float(values[i])) for i in todo],
                jobs,
                backend=backend,
            )
        return map_jobs(
            partial(_encode_for_spec, emg=pattern.emg, fs=pattern.fs),
            [specs[i] for i in todo],
            jobs,
            backend=backend,
        )

    def _decode_and_score(
        self,
        streams: "list[EventStream]",
        specs: "list[ExperimentSpec]",
        pattern: Pattern,
    ) -> np.ndarray:
        """Batched receiver side: one decode + one stacked correlation
        per distinct (scheme, fs_out, window_s) operating point.

        All of a sweep's streams share the pattern's observation window,
        so each group decodes in one :func:`reconstruct_batch` call —
        per-row ``vref`` / ``dac_bits`` cover heterogeneous-DAC grids
        within a group — and scores against one broadcast reference.  A
        sweep over ``"decoder.fs_out"`` / ``"decoder.window_s"`` (or over
        whole ``"encoder"`` specs with differing schemes) simply produces
        one group per distinct operating point.
        """
        corrs = np.empty(len(streams))
        groups: "dict[tuple[str, float, float], list[int]]" = {}
        for i, spec in enumerate(specs):
            key = (spec.scheme, spec.decoder.fs_out, spec.decoder.window_s)
            groups.setdefault(key, []).append(i)
        for (scheme, fs_out, window_s), rows in groups.items():
            recons = reconstruct_batch(
                [streams[i] for i in rows],
                scheme,
                None,
                fs_out=fs_out,
                window_s=window_s,
                vref=np.array([specs[i].decode_vref for i in rows]),
                dac_bits=np.array([specs[i].decode_dac_bits for i in rows]),
            )
            reference = pattern.ground_truth_envelope(window_s=window_s)
            references = np.broadcast_to(
                reference, (len(rows), reference.size)
            )
            corrs[rows] = aligned_correlation_percent_batch(recons, references)
        return corrs

    @staticmethod
    def _point_arrays(point: SweepPoint) -> "dict[str, np.ndarray]":
        """A sweep point as the arrays the result store persists."""
        return {
            "parameter": np.float64(point.parameter),
            "correlation_pct": np.float64(point.correlation_pct),
            "n_events": np.int64(point.n_events),
            "n_symbols": np.int64(point.n_symbols),
        }

    @staticmethod
    def _point_from_arrays(parameter: float, arrays) -> SweepPoint:
        """Rebuild a sweep point from stored arrays (bit-identical)."""
        return SweepPoint(
            parameter=parameter,
            correlation_pct=float(arrays["correlation_pct"]),
            n_events=int(arrays["n_events"]),
            n_symbols=int(arrays["n_symbols"]),
        )

    # ------------------------------------------------------------------
    # Dataset sweep
    # ------------------------------------------------------------------
    def dataset_sweep(
        self,
        dataset: DatasetSpec,
        limit: "int | None" = None,
        jobs: "int | None" = None,
        backend: "str | None" = None,
        shard_size: "int | None" = None,
    ) -> DatasetSweepResult:
        """Run the spec over (a prefix of) a dataset, sharded and cached.

        The pattern grid is split into contiguous shards
        (:func:`repro.runtime.executors.plan_shards`); each shard
        generates its patterns and runs the fully batched pipeline in one
        worker task, returning only the per-pattern summary arrays.
        ``backend="process"`` is the many-core path; ``serial`` /
        ``jobs=None`` is one shard — the whole grid in a single batched
        call.  Results are element-wise bit-identical across backends,
        shard sizes and cache states.

        With a store attached, each pattern's summary is memoised under
        ``(spec.key(), dataset-point fingerprint)`` — the fingerprint
        hashes the dataset's generating spec, not the samples, so a warm
        re-run performs **zero** re-evaluations (no synthesis, no encode,
        no decode).
        """
        n = dataset.n_patterns if limit is None else min(limit, dataset.n_patterns)
        ids = np.arange(n)
        corr = np.zeros(n)
        events = np.zeros(n, dtype=np.int64)
        todo = list(range(n))
        if self.store is not None:
            key = self.spec.key()
            base = dataset_fingerprint(dataset)  # hash the spec once, not n times
            fingerprints = [
                dataset_point_fingerprint(base, i) for i in range(n)
            ]
            todo = []
            for i in range(n):
                cached = self.store.get(key, fingerprints[i])
                if cached is None:
                    todo.append(i)
                else:
                    corr[i] = float(cached["correlation_pct"])
                    events[i] = int(cached["n_events"])
        if todo:
            todo_ids = np.asarray(todo)
            if resolve_backend(backend, jobs) == "serial":
                shards = [slice(0, len(todo))]
            else:
                shards = plan_shards(
                    len(todo),
                    jobs if jobs is not None else default_jobs(),
                    shard_size,
                )
            parts = map_jobs(
                partial(_dataset_shard, dataset=dataset, spec=self.spec),
                [todo_ids[s] for s in shards],
                jobs,
                backend=backend,
                shard_size=1,  # the pattern grid is already sharded
            )
            corr[todo_ids] = np.concatenate([p[0] for p in parts])
            events[todo_ids] = np.concatenate([p[1] for p in parts])
            if self.store is not None:
                for i in todo:
                    self.store.put(
                        key,
                        fingerprints[i],
                        {
                            "correlation_pct": np.float64(corr[i]),
                            "n_events": np.int64(events[i]),
                        },
                    )
        return DatasetSweepResult(
            scheme=self.spec.scheme,
            pattern_ids=ids,
            correlations_pct=corr,
            n_events=events,
        )

    # ------------------------------------------------------------------
    # Link sweep
    # ------------------------------------------------------------------
    def link_sweep(
        self,
        stream: EventStream,
        erasure_probs,
        seed: int = 13,
    ) -> "list[LinkSweepPoint]":
        """Event delivery and level integrity vs pulse-erasure probability.

        Transports ``stream`` through the spec's link (``spec.link``, or
        the default :class:`LinkConfig` when the spec carries none) once
        per erasure probability — all operating points share one batched
        link call with a per-point channel and a single RNG.
        """
        config = self.spec.link.config if self.spec.link is not None else LinkConfig()
        erasure_probs = [float(p) for p in erasure_probs]
        for p in erasure_probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"erasure probability must be in [0, 1], got {p}"
                )
        if not erasure_probs:
            return []
        channels = [UWBChannel(erasure_prob=p) for p in erasure_probs]
        rng = np.random.default_rng(seed)
        results = simulate_link_batch(
            [stream] * len(channels), config, channel=channels, rng=rng
        )
        return [
            LinkSweepPoint(
                erasure_prob=p,
                event_delivery_ratio=r.event_delivery_ratio,
                level_error_ratio=r.level_error_ratio,
                n_pulses=r.n_pulses,
                tx_energy_j=r.tx_energy_j,
            )
            for p, r in zip(erasure_probs, results)
        ]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def pipeline(
        self,
        fs: float,
        channel=None,
        rng: "np.random.Generator | None" = None,
        rectify: bool = True,
    ) -> AsyncStreamingPipeline:
        """A live streaming pipeline configured from this spec.

        The returned :class:`~repro.runtime.ingest.AsyncStreamingPipeline`
        carries the spec's encoder, link (if any) and decoder operating
        points; drive it with ``push``/``finish`` or ``stream``/``run``.
        """
        return AsyncStreamingPipeline(
            fs=fs,
            scheme=self.spec.scheme,
            config=self.spec.encoder.config,
            link=self.spec.link.config if self.spec.link is not None else None,
            channel=channel,
            rng=rng,
            fs_out=self.spec.decoder.fs_out,
            window_s=self.spec.decoder.window_s,
            rectify=rectify,
        )

    def stream(self, source, fs: float, **pipeline_kwargs):
        """Async-iterate envelope chunks for a live chunk ``source``.

        Sugar for ``self.pipeline(fs).stream(source)`` — see
        :class:`~repro.runtime.ingest.AsyncStreamingPipeline.stream`.
        """
        return self.pipeline(fs, **pipeline_kwargs).stream(source)
