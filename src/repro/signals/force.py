"""Force-profile generators for synthetic sEMG experiments.

The DATE 2015 paper evaluates D-ATC on recordings of eight subjects
performing cylindrical power-grip contractions sweeping from 70% of their
Maximum Voluntary Contraction (MVC) down to 0%.  The recordings themselves
are not public, so this module provides the *force* side of the substitute
dataset: deterministic, parameterised profiles expressed as a fraction of
MVC in ``[0, 1]``.

All generators return a ``numpy.ndarray`` of length ``round(duration * fs)``
and take the sampling rate explicitly; none of them keep hidden state.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "constant_profile",
    "ramp_profile",
    "trapezoid_profile",
    "staircase_profile",
    "sinusoidal_profile",
    "rest_profile",
    "concatenate_profiles",
    "smooth_profile",
    "mvc_grip_protocol",
    "random_grip_protocol",
]


def _n_samples(duration: float, fs: float) -> int:
    """Number of samples for ``duration`` seconds at ``fs`` Hz."""
    if duration < 0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    if fs <= 0:
        raise ValueError(f"fs must be positive, got {fs}")
    return int(round(duration * fs))


def constant_profile(duration: float, fs: float, level: float) -> np.ndarray:
    """A constant contraction at ``level`` (fraction of MVC)."""
    _check_level(level)
    return np.full(_n_samples(duration, fs), float(level))


def rest_profile(duration: float, fs: float) -> np.ndarray:
    """A rest period (zero force)."""
    return np.zeros(_n_samples(duration, fs))


def ramp_profile(duration: float, fs: float, start: float, end: float) -> np.ndarray:
    """A linear force ramp from ``start`` to ``end`` (fractions of MVC)."""
    _check_level(start)
    _check_level(end)
    n = _n_samples(duration, fs)
    if n == 0:
        return np.zeros(0)
    return np.linspace(float(start), float(end), n)


def trapezoid_profile(
    rise: float,
    hold: float,
    fall: float,
    fs: float,
    level: float,
    start_level: float = 0.0,
) -> np.ndarray:
    """A trapezoidal contraction: ramp up, hold, ramp down.

    This is the canonical shape of a voluntary grip contraction in the
    paper's protocol (sustain a target %MVC, then release).
    """
    _check_level(level)
    parts = [
        ramp_profile(rise, fs, start_level, level),
        constant_profile(hold, fs, level),
        ramp_profile(fall, fs, level, start_level),
    ]
    return np.concatenate(parts)


def staircase_profile(
    levels: "list[float] | tuple[float, ...] | np.ndarray",
    segment_duration: float,
    fs: float,
) -> np.ndarray:
    """A sequence of constant segments, one per entry of ``levels``."""
    segments = [constant_profile(segment_duration, fs, lv) for lv in levels]
    if not segments:
        return np.zeros(0)
    return np.concatenate(segments)


def sinusoidal_profile(
    duration: float,
    fs: float,
    mean: float,
    amplitude: float,
    frequency_hz: float,
    phase: float = 0.0,
) -> np.ndarray:
    """A slowly-varying sinusoidal force modulation.

    Useful for exercising threshold tracking with a continuously changing
    force.  The result is clipped to ``[0, 1]``.
    """
    n = _n_samples(duration, fs)
    t = np.arange(n) / fs
    profile = mean + amplitude * np.sin(2.0 * np.pi * frequency_hz * t + phase)
    return np.clip(profile, 0.0, 1.0)


def concatenate_profiles(*profiles: np.ndarray) -> np.ndarray:
    """Concatenate force segments into a single profile."""
    if not profiles:
        return np.zeros(0)
    return np.concatenate([np.asarray(p, dtype=float) for p in profiles])


def smooth_profile(profile: np.ndarray, fs: float, cutoff_hz: float = 2.0) -> np.ndarray:
    """Low-pass smooth a profile to remove unphysiological discontinuities.

    Real muscle force cannot step instantaneously; a ~2 Hz first-order
    smoothing matches the bandwidth of voluntary force modulation.
    Implemented as a forward-backward exponential filter so the result has
    no phase lag (important: the ground truth used for correlation must be
    time-aligned with the sEMG it modulates).
    """
    profile = np.asarray(profile, dtype=float)
    if profile.size == 0:
        return profile.copy()
    if cutoff_hz <= 0:
        raise ValueError(f"cutoff_hz must be positive, got {cutoff_hz}")
    alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz / fs)
    forward = np.empty_like(profile)
    acc = profile[0]
    for i, x in enumerate(profile):
        acc += alpha * (x - acc)
        forward[i] = acc
    backward = np.empty_like(profile)
    acc = forward[-1]
    for i in range(profile.size - 1, -1, -1):
        acc += alpha * (forward[i] - acc)
        backward[i] = acc
    return np.clip(backward, 0.0, 1.0)


def mvc_grip_protocol(
    duration: float,
    fs: float,
    max_level: float = 0.7,
    n_contractions: int = 6,
    rest_fraction: float = 0.35,
    rise_fraction: float = 0.15,
) -> np.ndarray:
    """The paper's grip protocol: contractions from ``max_level`` MVC to ~0.

    ``n_contractions`` trapezoidal contractions of linearly decreasing
    target level (``max_level`` down towards 0) separated by rests, fitted
    exactly into ``duration`` seconds.  Matches the description "70% of
    their Maximum Voluntary Contraction (MVC) to 0% using a cylindrical
    power grip" over a 20 s recording.
    """
    _check_level(max_level)
    if n_contractions < 1:
        raise ValueError("n_contractions must be >= 1")
    if not 0.0 <= rest_fraction < 1.0:
        raise ValueError("rest_fraction must be in [0, 1)")

    slot = duration / n_contractions
    rest = slot * rest_fraction
    active = slot - rest
    rise = active * rise_fraction
    fall = active * rise_fraction
    hold = active - rise - fall

    # Decreasing targets: max_level, ..., down to max_level / n_contractions.
    targets = max_level * (1.0 - np.arange(n_contractions) / n_contractions)
    segments = []
    for level in targets:
        segments.append(trapezoid_profile(rise, hold, fall, fs, float(level)))
        segments.append(rest_profile(rest, fs))
    profile = concatenate_profiles(*segments)

    # Fit to the exact sample count (rounding of the segments may drift).
    n = _n_samples(duration, fs)
    if profile.size < n:
        profile = np.concatenate([profile, np.zeros(n - profile.size)])
    profile = profile[:n]
    return smooth_profile(profile, fs)


def random_grip_protocol(
    duration: float,
    fs: float,
    rng: np.random.Generator,
    max_level: float = 0.7,
    min_level: float = 0.05,
    n_contractions_range: "tuple[int, int]" = (4, 8),
) -> np.ndarray:
    """A randomised variant of :func:`mvc_grip_protocol`.

    Randomises the number of contractions, their target levels (decreasing
    on average but jittered) and the rest durations.  Used to give the 190
    synthetic patterns realistic inter-trial variability.
    """
    lo, hi = n_contractions_range
    n_contractions = int(rng.integers(lo, hi + 1))
    slot = duration / n_contractions
    segments = []
    base_targets = np.linspace(max_level, min_level, n_contractions)
    for base in base_targets:
        level = float(np.clip(base * rng.uniform(0.75, 1.2), min_level, 1.0))
        rest = slot * rng.uniform(0.2, 0.45)
        active = slot - rest
        rise = active * rng.uniform(0.1, 0.25)
        fall = active * rng.uniform(0.1, 0.25)
        hold = max(active - rise - fall, 0.0)
        segments.append(trapezoid_profile(rise, hold, fall, fs, level))
        segments.append(rest_profile(rest, fs))
    profile = concatenate_profiles(*segments)
    n = _n_samples(duration, fs)
    if profile.size < n:
        profile = np.concatenate([profile, np.zeros(n - profile.size)])
    profile = profile[:n]
    return smooth_profile(profile, fs)


def _check_level(level: float) -> None:
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"force level must be within [0, 1] of MVC, got {level}")
