"""sEMG signal substrate: force profiles, synthetic EMG, dataset, envelopes.

This subpackage replaces the paper's 190 recorded sEMG patterns (not
public) with a deterministic synthetic equivalent; see DESIGN.md for the
substitution rationale.
"""

from .artifacts import add_motion_artifacts, add_powerline, add_spike_artifacts
from .dataset import (
    PAPER_DURATION_S,
    PAPER_N_PATTERNS,
    PAPER_N_SAMPLES,
    PAPER_N_SUBJECTS,
    PAPER_SAMPLE_RATE_HZ,
    DatasetSpec,
    Pattern,
    default_dataset,
)
from .emg import EMGModel, shaped_noise, shwedyk_psd, synthesize_emg
from .envelope import (
    arv,
    arv_envelope,
    lowpass_envelope,
    moving_average,
    rectify,
    rms_envelope,
)
from .io import (
    export_events_csv,
    load_event_stream,
    load_pattern,
    save_event_stream,
    save_pattern,
)
from .force import (
    concatenate_profiles,
    constant_profile,
    mvc_grip_protocol,
    ramp_profile,
    random_grip_protocol,
    rest_profile,
    sinusoidal_profile,
    smooth_profile,
    staircase_profile,
    trapezoid_profile,
)
from .subjects import DEFAULT_N_SUBJECTS, Subject, sample_subjects

__all__ = [
    "export_events_csv",
    "load_event_stream",
    "load_pattern",
    "save_event_stream",
    "save_pattern",
    "add_motion_artifacts",
    "add_powerline",
    "add_spike_artifacts",
    "PAPER_DURATION_S",
    "PAPER_N_PATTERNS",
    "PAPER_N_SAMPLES",
    "PAPER_N_SUBJECTS",
    "PAPER_SAMPLE_RATE_HZ",
    "DatasetSpec",
    "Pattern",
    "default_dataset",
    "EMGModel",
    "shaped_noise",
    "shwedyk_psd",
    "synthesize_emg",
    "arv",
    "arv_envelope",
    "lowpass_envelope",
    "moving_average",
    "rectify",
    "rms_envelope",
    "concatenate_profiles",
    "constant_profile",
    "mvc_grip_protocol",
    "ramp_profile",
    "random_grip_protocol",
    "rest_profile",
    "sinusoidal_profile",
    "smooth_profile",
    "staircase_profile",
    "trapezoid_profile",
    "DEFAULT_N_SUBJECTS",
    "Subject",
    "sample_subjects",
]
