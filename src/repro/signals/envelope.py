"""Rectification and envelope estimation for sEMG signals.

The paper's correlation figure of merit compares the *receiver-side
reconstruction* against "the average rectified value of the sEMG signal"
(ARV), i.e. a moving average of the full-wave-rectified signal.  This
module provides the ground-truth side of that comparison plus the general
envelope utilities used throughout the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rectify",
    "moving_average",
    "arv_envelope",
    "rms_envelope",
    "lowpass_envelope",
    "arv",
]


def rectify(signal: np.ndarray) -> np.ndarray:
    """Full-wave rectification (absolute value)."""
    return np.abs(np.asarray(signal, dtype=float))


def moving_average(
    signal: np.ndarray, window_samples: int, axis: int = -1
) -> np.ndarray:
    """Centred moving average with edge-correct normalisation.

    Uses a cumulative-sum implementation (O(n)) and normalises shortened
    edge windows by their true length so the envelope has no start-up
    droop — important because the correlation metric would otherwise be
    biased by edge transients.

    ``axis`` selects the smoothing axis for multi-dimensional input (the
    batched receiver smooths an ``(n_streams, n_bins)`` matrix along
    ``axis=-1`` in one call); each slice along it matches the 1-D result
    bit for bit because the cumulative sums run in the same order.
    """
    signal = np.asarray(signal, dtype=float)
    if window_samples < 1:
        raise ValueError(f"window_samples must be >= 1, got {window_samples}")
    x = np.moveaxis(signal, axis, -1)
    n = x.shape[-1]
    if n == 0:
        return signal.copy()
    window_samples = min(window_samples, n)
    half_lo = window_samples // 2
    half_hi = window_samples - half_lo  # window covers [i-half_lo, i+half_hi)
    csum = np.concatenate(
        [np.zeros(x.shape[:-1] + (1,)), np.cumsum(x, axis=-1)], axis=-1
    )
    out = np.empty(x.shape)
    # Interior (both window ends in range) via plain slices — the hot
    # region is contiguous, so no index gathers are needed there.
    i0, i1 = half_lo, n - half_hi  # inclusive interior range
    if i1 >= i0:
        interior = out[..., i0 : i1 + 1]
        np.subtract(
            csum[..., i0 + half_hi : i1 + half_hi + 1],
            csum[..., 0 : i1 - i0 + 1],
            out=interior,
        )
        interior /= window_samples
    left = min(half_lo, n)
    if left:
        hi = np.clip(np.arange(left) + half_hi, 0, n)
        out[..., :left] = (csum[..., hi] - csum[..., 0:1]) / hi
    right = max(n - half_hi + 1, left)
    if right < n:
        lo = np.clip(np.arange(right, n) - half_lo, 0, n)
        out[..., right:] = (csum[..., n : n + 1] - csum[..., lo]) / (n - lo)
    return np.moveaxis(out, -1, axis)


def arv_envelope(signal: np.ndarray, fs: float, window_s: float = 0.25) -> np.ndarray:
    """Average Rectified Value envelope: moving average of ``|signal|``.

    ``window_s`` defaults to 250 ms, a standard sEMG smoothing window that
    matches the low-complexity windowing the paper applies at the receiver.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    window = max(1, int(round(window_s * fs)))
    return moving_average(rectify(signal), window)


def rms_envelope(signal: np.ndarray, fs: float, window_s: float = 0.25) -> np.ndarray:
    """Root-mean-square envelope over a moving window."""
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    window = max(1, int(round(window_s * fs)))
    signal = np.asarray(signal, dtype=float)
    return np.sqrt(moving_average(signal * signal, window))


def lowpass_envelope(signal: np.ndarray, fs: float, cutoff_hz: float = 4.0) -> np.ndarray:
    """Rectify-then-low-pass envelope (single-pole, forward-backward).

    A cheap alternative to the windowed ARV; zero phase so it stays
    time-aligned with the ground truth.
    """
    if cutoff_hz <= 0:
        raise ValueError(f"cutoff_hz must be positive, got {cutoff_hz}")
    x = rectify(signal)
    if x.size == 0:
        return x
    alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz / fs)
    forward = np.empty_like(x)
    acc = x[0]
    for i, v in enumerate(x):
        acc += alpha * (v - acc)
        forward[i] = acc
    backward = np.empty_like(x)
    acc = forward[-1]
    for i in range(x.size - 1, -1, -1):
        acc += alpha * (forward[i] - acc)
        backward[i] = acc
    return backward


def arv(signal: np.ndarray) -> float:
    """Scalar Average Rectified Value of a whole signal."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise ValueError("cannot compute ARV of an empty signal")
    return float(np.mean(np.abs(signal)))
