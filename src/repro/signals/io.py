"""Persistence for patterns and event streams.

Recordings and encoded event streams can be saved to ``.npz`` archives so
experiments can run on frozen data (or on *real* sEMG recordings dropped
into the same format), and event streams can be exported to CSV for
inspection in external tools.

The archive format is versioned and self-describing: every array the
object needs plus a small metadata header.
"""

from __future__ import annotations

import csv

import numpy as np

from ..core.events import EventStream
from .dataset import Pattern
from .emg import EMGModel
from .subjects import Subject

__all__ = [
    "save_pattern",
    "load_pattern",
    "save_event_stream",
    "load_event_stream",
    "export_events_csv",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


def save_pattern(path: str, pattern: Pattern) -> None:
    """Save a pattern (signal + ground truth + subject model) to ``.npz``."""
    model = pattern.subject.model
    np.savez_compressed(
        path,
        format_version=FORMAT_VERSION,
        kind="pattern",
        pattern_id=pattern.pattern_id,
        subject_id=pattern.subject.subject_id,
        fs=pattern.fs,
        emg=pattern.emg,
        force=pattern.force,
        model_gain_v=model.gain_v,
        model_alpha=model.alpha,
        model_noise_floor_v=model.noise_floor_v,
        model_f_low=model.f_low,
        model_f_high=model.f_high,
    )


def load_pattern(path: str) -> Pattern:
    """Load a pattern saved by :func:`save_pattern`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "pattern")
        model = EMGModel(
            gain_v=float(data["model_gain_v"]),
            alpha=float(data["model_alpha"]),
            noise_floor_v=float(data["model_noise_floor_v"]),
            f_low=float(data["model_f_low"]),
            f_high=float(data["model_f_high"]),
        )
        subject = Subject(subject_id=int(data["subject_id"]), model=model)
        return Pattern(
            pattern_id=int(data["pattern_id"]),
            subject=subject,
            fs=float(data["fs"]),
            emg=np.asarray(data["emg"], dtype=float),
            force=np.asarray(data["force"], dtype=float),
        )


def save_event_stream(path: str, stream: EventStream) -> None:
    """Save an event stream to ``.npz``."""
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "event_stream",
        "times": stream.times,
        "duration_s": stream.duration_s,
        "clock_hz": stream.clock_hz,
        "symbols_per_event": stream.symbols_per_event,
        "has_levels": stream.levels is not None,
    }
    if stream.levels is not None:
        payload["levels"] = stream.levels
    np.savez_compressed(path, **payload)


def load_event_stream(path: str) -> EventStream:
    """Load an event stream saved by :func:`save_event_stream`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "event_stream")
        levels = data["levels"] if bool(data["has_levels"]) else None
        return EventStream(
            times=np.asarray(data["times"], dtype=float),
            duration_s=float(data["duration_s"]),
            levels=None if levels is None else np.asarray(levels, dtype=np.int64),
            clock_hz=float(data["clock_hz"]),
            symbols_per_event=int(data["symbols_per_event"]),
        )


def export_events_csv(path: str, stream: EventStream) -> None:
    """Export an event stream to CSV (``time_s[,level,vth_v]`` per row)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        if stream.levels is not None:
            writer.writerow(["time_s", "level", "vth_v"])
            volts = stream.level_voltages()
            for t, lv, v in zip(stream.times, stream.levels, volts):
                writer.writerow([f"{t:.6f}", int(lv), f"{v:.6f}"])
        else:
            writer.writerow(["time_s"])
            for t in stream.times:
                writer.writerow([f"{t:.6f}"])


def _check_archive(data, expected_kind: str) -> None:
    if "format_version" not in data or "kind" not in data:
        raise ValueError("not a repro archive (missing header fields)")
    version = int(data["format_version"])
    if version > FORMAT_VERSION:
        raise ValueError(
            f"archive format v{version} is newer than supported v{FORMAT_VERSION}"
        )
    kind = str(data["kind"])
    if kind != expected_kind:
        raise ValueError(f"expected a {expected_kind} archive, got {kind!r}")
