"""Artifact injection for robustness experiments.

The paper argues (Sec. III-B) that "even if we add some pulses due to
artifacts we believe that the signal is still received with a good
correlation, as artifacts effect is similar to pulse missing".  This module
provides the artifact models used to test that claim quantitatively:

* **motion artifacts** — low-frequency, high-amplitude baseline excursions
  caused by electrode/cable movement;
* **spike artifacts** — short impulsive transients (electrostatic or
  stimulation cross-talk);
* **powerline interference** — 50/60 Hz additive sinusoid.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "add_motion_artifacts",
    "add_spike_artifacts",
    "add_powerline",
]


def add_motion_artifacts(
    signal: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    n_bursts: int = 3,
    amplitude_v: float = 0.3,
    burst_duration_s: float = 0.4,
) -> np.ndarray:
    """Add low-frequency (<10 Hz) burst excursions to ``signal``.

    Each burst is a raised-cosine envelope multiplying a 2-8 Hz sinusoid,
    placed uniformly at random along the recording.  Returns a new array.
    """
    signal = np.asarray(signal, dtype=float).copy()
    n = signal.size
    burst_len = max(1, int(round(burst_duration_s * fs)))
    if n == 0 or n_bursts <= 0:
        return signal
    t = np.arange(burst_len) / fs
    for _ in range(n_bursts):
        start = int(rng.integers(0, max(1, n - burst_len)))
        freq = rng.uniform(2.0, 8.0)
        envelope = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(burst_len) / burst_len))
        burst = amplitude_v * envelope * np.sin(2.0 * np.pi * freq * t + rng.uniform(0, 2 * np.pi))
        stop = min(start + burst_len, n)
        signal[start:stop] += burst[: stop - start]
    return signal


def add_spike_artifacts(
    signal: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    rate_hz: float = 1.0,
    amplitude_v: float = 0.5,
    width_s: float = 0.002,
) -> np.ndarray:
    """Add short impulsive spikes at a Poisson rate of ``rate_hz``.

    Spikes are one-sided (positive) so on a rectified signal they always
    produce spurious threshold crossings — the worst case for an
    event-based encoder.
    """
    signal = np.asarray(signal, dtype=float).copy()
    n = signal.size
    if n == 0 or rate_hz <= 0:
        return signal
    duration = n / fs
    n_spikes = rng.poisson(rate_hz * duration)
    width = max(1, int(round(width_s * fs)))
    shape = np.exp(-np.arange(width) / max(width / 3.0, 1.0))
    for _ in range(n_spikes):
        start = int(rng.integers(0, n))
        stop = min(start + width, n)
        signal[start:stop] += amplitude_v * shape[: stop - start]
    return signal


def add_powerline(
    signal: np.ndarray,
    fs: float,
    amplitude_v: float = 0.02,
    frequency_hz: float = 50.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Add mains interference (European 50 Hz by default)."""
    signal = np.asarray(signal, dtype=float)
    t = np.arange(signal.size) / fs
    return signal + amplitude_v * np.sin(2.0 * np.pi * frequency_hz * t + phase)
