"""Subject population model for the synthetic 190-pattern dataset.

The paper records eight healthy male subjects (30±2 years old).  What
matters to the D-ATC evaluation is the *spread of amplified sEMG amplitude*
across subjects: skin thickness, subcutaneous fat, electrode placement and
gender all scale the voltage seen by the comparator, which is precisely why
a fixed threshold needs per-subject trimming while D-ATC adapts.

This module draws per-subject :class:`~repro.signals.emg.EMGModel`
parameters from distributions wide enough that a 0.3 V fixed threshold is
grossly mismatched for the weakest subjects (their envelope rarely exceeds
it → correlations collapsing towards ~50%, the paper's Fig. 5 low end) yet
too low for the strongest (excess events).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .emg import EMGModel

__all__ = ["Subject", "sample_subjects", "DEFAULT_N_SUBJECTS"]

DEFAULT_N_SUBJECTS = 8

# Log-uniform bounds on the full-MVC amplified envelope amplitude (volts).
# The low end sits well below the paper's fixed 0.3 V threshold, the high
# end near the 1 V DAC reference, mirroring the inter-subject variability
# the paper describes.
_GAIN_V_BOUNDS = (0.145, 0.95)
_ALPHA_BOUNDS = (1.0, 1.25)
_NOISE_FLOOR_BOUNDS = (0.004, 0.02)
_F_LOW_BOUNDS = (60.0, 100.0)
_F_HIGH_BOUNDS = (160.0, 240.0)


@dataclass(frozen=True)
class Subject:
    """One synthetic subject: identity plus sEMG model parameters."""

    subject_id: int
    model: EMGModel
    age_years: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.subject_id < 0:
            raise ValueError(f"subject_id must be non-negative, got {self.subject_id}")


def sample_subjects(
    n_subjects: int = DEFAULT_N_SUBJECTS,
    seed: int = 2015,
) -> "list[Subject]":
    """Draw a reproducible subject population.

    The population always spans the amplitude range: the first and last
    subjects are pinned near the bounds of ``_GAIN_V_BOUNDS`` (the dataset
    must contain both "weak" and "strong" signals for the fixed-vs-dynamic
    comparison to be meaningful); intermediate subjects are drawn
    log-uniformly in between.
    """
    if n_subjects < 1:
        raise ValueError(f"n_subjects must be >= 1, got {n_subjects}")
    rng = np.random.default_rng(seed)
    lo, hi = _GAIN_V_BOUNDS

    gains = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_subjects))
    if n_subjects >= 2:
        gains[0] = lo * 1.1
        gains[-1] = hi * 0.95
    subjects = []
    for i in range(n_subjects):
        model = EMGModel(
            gain_v=float(gains[i]),
            alpha=float(rng.uniform(*_ALPHA_BOUNDS)),
            noise_floor_v=float(rng.uniform(*_NOISE_FLOOR_BOUNDS)),
            f_low=float(rng.uniform(*_F_LOW_BOUNDS)),
            f_high=float(rng.uniform(*_F_HIGH_BOUNDS)),
        )
        subjects.append(
            Subject(
                subject_id=i,
                model=model,
                age_years=float(rng.normal(30.0, 2.0)),
                description=f"synthetic subject {i} (gain {model.gain_v:.3f} V @ MVC)",
            )
        )
    return subjects
