"""Synthetic surface-EMG generation.

The paper's evaluation uses 190 recorded sEMG patterns that are not public.
We substitute a standard physiologically-grounded synthetic model:

* a zero-mean stochastic *carrier* whose power spectral density follows the
  Shwedyk et al. analytic sEMG spectrum (energy concentrated between
  roughly 20 Hz and 450 Hz, peaking near 80-120 Hz), obtained by shaping
  white Gaussian noise in the frequency domain;
* *amplitude modulation* of the carrier by the exerted force: the rectified
  sEMG amplitude is well approximated as monotone (near-linear) in %MVC;
* an additive *baseline* (electrode/amplifier) noise floor.

The D-ATC evaluation relies exactly on these two properties — envelope
monotone in force, absolute amplitude varying between subjects — so the
substitution preserves the behaviour under test (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EMGModel", "shwedyk_psd", "shaped_noise", "synthesize_emg"]


def shwedyk_psd(freqs: np.ndarray, f_low: float = 80.0, f_high: float = 200.0) -> np.ndarray:
    """Shwedyk analytic sEMG power spectral density (unnormalised).

    ``PSD(f) = k * f_high^4 * f^2 / ((f^2 + f_low^2) * (f^2 + f_high^2)^2)``

    ``f_low`` and ``f_high`` shape the low-frequency roll-on and the
    high-frequency roll-off; the defaults put the spectral peak near
    130 Hz, typical of forearm surface recordings with closely spaced
    differential electrodes (which shift energy upward).
    """
    freqs = np.asarray(freqs, dtype=float)
    f2 = freqs * freqs
    num = (f_high ** 4) * f2
    den = (f2 + f_low ** 2) * (f2 + f_high ** 2) ** 2
    psd = np.zeros_like(freqs)
    nonzero = den > 0
    psd[nonzero] = num[nonzero] / den[nonzero]
    return psd


def shaped_noise(
    n: int,
    fs: float,
    rng: np.random.Generator,
    f_low: float = 80.0,
    f_high: float = 200.0,
) -> np.ndarray:
    """Unit-variance Gaussian noise with the Shwedyk sEMG spectrum.

    White Gaussian noise is shaped in the frequency domain by the square
    root of :func:`shwedyk_psd` and renormalised to unit variance, so the
    caller controls the amplitude purely through the force modulation.
    """
    if n <= 0:
        return np.zeros(0)
    white = rng.standard_normal(n)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)
    gain = np.sqrt(shwedyk_psd(freqs, f_low=f_low, f_high=f_high))
    gain[0] = 0.0  # no DC component in sEMG
    shaped = np.fft.irfft(spectrum * gain, n=n)
    std = shaped.std()
    if std > 0:
        shaped /= std
    return shaped


@dataclass(frozen=True)
class EMGModel:
    """Parameters of the synthetic sEMG model for one subject/electrode site.

    Attributes
    ----------
    gain_v:
        Rectified-envelope amplitude, in volts *after pre-amplification*,
        produced at 100% MVC.  This is the subject-dependent quantity that
        breaks fixed-threshold ATC: the paper notes that "people with
        different skin thickness and gender have dissimilar sEMG voltage
        levels".
    alpha:
        Exponent of the force-to-amplitude mapping
        ``amplitude = gain_v * force**alpha`` (near 1; slightly >1 models
        the progressive recruitment of larger motor units).
    noise_floor_v:
        RMS of the additive baseline noise (electrode + amplifier).
    f_low, f_high:
        Spectral shape parameters of :func:`shwedyk_psd`.
    """

    gain_v: float = 0.5
    alpha: float = 1.1
    noise_floor_v: float = 0.01
    f_low: float = 80.0
    f_high: float = 200.0

    def __post_init__(self) -> None:
        if self.gain_v <= 0:
            raise ValueError(f"gain_v must be positive, got {self.gain_v}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.noise_floor_v < 0:
            raise ValueError(f"noise_floor_v must be non-negative, got {self.noise_floor_v}")
        if not 0 < self.f_low < self.f_high:
            raise ValueError(
                f"need 0 < f_low < f_high, got f_low={self.f_low}, f_high={self.f_high}"
            )

    def amplitude(self, force: np.ndarray) -> np.ndarray:
        """Instantaneous sEMG RMS amplitude (V) for a force profile in [0,1]."""
        force = np.clip(np.asarray(force, dtype=float), 0.0, 1.0)
        return self.gain_v * np.power(force, self.alpha)


def synthesize_emg(
    force: np.ndarray,
    fs: float,
    model: EMGModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a raw (signed) sEMG trace modulated by ``force``.

    Parameters
    ----------
    force:
        Force profile as a fraction of MVC, one value per output sample.
    fs:
        Sampling rate in Hz (the paper's recordings are 50000 samples over
        20 s, i.e. 2500 Hz).
    model:
        Subject/electrode parameters.
    rng:
        Source of randomness; pass a seeded generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        The signed sEMG in volts, same length as ``force``.
    """
    force = np.asarray(force, dtype=float)
    n = force.size
    carrier = shaped_noise(n, fs, rng, f_low=model.f_low, f_high=model.f_high)
    baseline = model.noise_floor_v * rng.standard_normal(n)
    return model.amplitude(force) * carrier + baseline
