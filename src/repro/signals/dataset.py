"""The synthetic 190-pattern sEMG dataset used throughout the evaluation.

The paper's evaluation set: "190 patterns ... each pattern contains 50000
samples for 20 seconds muscle activity.  The data samples refer to eight
healthy male subjects with 70% of their Maximum Voluntary Contraction (MVC)
to 0% using a cylindrical power grip."

We mirror those dimensions exactly (190 patterns, 8 subjects, 50000 samples
at 2500 Hz over 20 s) with the synthetic generator of
:mod:`repro.signals.emg`.  Pattern generation is deterministic in
``(seed, pattern_id)`` and lazy, so sweeping the full dataset does not
require 76 MB of signals resident at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .emg import EMGModel, synthesize_emg
from .envelope import arv_envelope
from .force import mvc_grip_protocol, random_grip_protocol
from .subjects import Subject, sample_subjects

__all__ = [
    "Pattern",
    "DatasetSpec",
    "default_dataset",
    "PAPER_N_PATTERNS",
    "PAPER_N_SUBJECTS",
    "PAPER_N_SAMPLES",
    "PAPER_DURATION_S",
    "PAPER_SAMPLE_RATE_HZ",
]

PAPER_N_PATTERNS = 190
PAPER_N_SUBJECTS = 8
PAPER_N_SAMPLES = 50_000
PAPER_DURATION_S = 20.0
PAPER_SAMPLE_RATE_HZ = PAPER_N_SAMPLES / PAPER_DURATION_S  # 2500 Hz


@dataclass(frozen=True)
class Pattern:
    """One sEMG recording: raw signal plus its ground truth.

    Attributes
    ----------
    pattern_id:
        Index within the dataset (0-based).
    subject:
        The synthetic subject this pattern belongs to.
    fs:
        Sampling rate in Hz.
    emg:
        Signed amplified sEMG trace, volts.
    force:
        Ground-truth force profile (fraction of MVC), aligned with ``emg``.
    """

    pattern_id: int
    subject: Subject
    fs: float
    emg: np.ndarray
    force: np.ndarray

    def __post_init__(self) -> None:
        if self.emg.shape != self.force.shape:
            raise ValueError(
                f"emg and force must be aligned, got {self.emg.shape} vs {self.force.shape}"
            )
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")

    @property
    def duration_s(self) -> float:
        """Recording length in seconds."""
        return self.emg.size / self.fs

    @property
    def n_samples(self) -> int:
        """Number of samples in the recording."""
        return int(self.emg.size)

    def rectified(self) -> np.ndarray:
        """Full-wave rectified sEMG (what the comparator front-end sees)."""
        return np.abs(self.emg)

    def ground_truth_envelope(self, window_s: float = 0.25) -> np.ndarray:
        """The paper's reference: ARV envelope of the raw sEMG."""
        return arv_envelope(self.emg, self.fs, window_s=window_s)


@dataclass(frozen=True)
class DatasetSpec:
    """Deterministic specification of a synthetic dataset.

    ``pattern(i)`` regenerates pattern ``i`` bit-identically for a given
    spec; iterating ``patterns()`` yields them lazily.
    """

    n_patterns: int = PAPER_N_PATTERNS
    n_subjects: int = PAPER_N_SUBJECTS
    fs: float = PAPER_SAMPLE_RATE_HZ
    duration_s: float = PAPER_DURATION_S
    seed: int = 2015
    subjects: "tuple[Subject, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.n_patterns < 1:
            raise ValueError(f"n_patterns must be >= 1, got {self.n_patterns}")
        if self.n_subjects < 1:
            raise ValueError(f"n_subjects must be >= 1, got {self.n_subjects}")
        if not self.subjects:
            object.__setattr__(
                self, "subjects", tuple(sample_subjects(self.n_subjects, seed=self.seed))
            )
        elif len(self.subjects) != self.n_subjects:
            raise ValueError(
                f"got {len(self.subjects)} subjects for n_subjects={self.n_subjects}"
            )

    def subject_for(self, pattern_id: int) -> Subject:
        """Subjects are assigned round-robin so each contributes ~equally."""
        return self.subjects[pattern_id % self.n_subjects]

    def pattern(self, pattern_id: int) -> Pattern:
        """Deterministically generate pattern ``pattern_id``."""
        if not 0 <= pattern_id < self.n_patterns:
            raise IndexError(
                f"pattern_id {pattern_id} out of range [0, {self.n_patterns})"
            )
        subject = self.subject_for(pattern_id)
        rng = np.random.default_rng((self.seed, pattern_id))
        if pattern_id % self.n_subjects == pattern_id // self.n_subjects % self.n_subjects:
            # A handful of patterns follow the canonical 70%->0% protocol
            # exactly; the rest are randomised variants of it.
            force = mvc_grip_protocol(self.duration_s, self.fs)
        else:
            force = random_grip_protocol(self.duration_s, self.fs, rng)
        emg = synthesize_emg(force, self.fs, subject.model, rng)
        return Pattern(
            pattern_id=pattern_id, subject=subject, fs=self.fs, emg=emg, force=force
        )

    def patterns(self):
        """Yield every pattern in order (lazy generation)."""
        for i in range(self.n_patterns):
            yield self.pattern(i)

    def __len__(self) -> int:
        return self.n_patterns

    def model_for(self, pattern_id: int) -> EMGModel:
        """Convenience accessor for the EMG model behind a pattern."""
        return self.subject_for(pattern_id).model


def default_dataset(n_patterns: int = PAPER_N_PATTERNS, seed: int = 2015) -> DatasetSpec:
    """The dataset used by all experiment drivers and benchmarks."""
    return DatasetSpec(n_patterns=n_patterns, seed=seed)
