"""Energy-detection receiver model.

The paper's radio (refs. [7], [11]) targets *energy-detection* receivers:
the RX squares and integrates the band-limited input over a window and
compares against a threshold — no carrier recovery, matching the
all-digital low-complexity philosophy.

Detection statistics: over an integration window of time-bandwidth product
``TW`` the statistic is chi-square with ``2TW`` degrees of freedom (central
under noise, noncentral with lambda = 2*Es/N0 under signal), giving the
classic Pd/Pfa trade-off implemented here with scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["EnergyDetector", "detection_probability", "noise_psd_w_per_hz"]

_BOLTZMANN = 1.380649e-23


def noise_psd_w_per_hz(noise_figure_db: float = 6.0, temperature_k: float = 290.0) -> float:
    """One-sided noise PSD N0 at the detector input (kTF)."""
    if temperature_k <= 0:
        raise ValueError(f"temperature_k must be positive, got {temperature_k}")
    return _BOLTZMANN * temperature_k * 10.0 ** (noise_figure_db / 10.0)


def detection_probability(
    es_over_n0: float, time_bandwidth: float = 5.0, pfa: float = 1e-3
) -> float:
    """Energy-detector Pd at a fixed false-alarm rate.

    ``es_over_n0`` is the received pulse energy over N0 (linear).  The
    statistic has ``2*TW`` degrees of freedom; the threshold is set from
    ``pfa`` on the central chi-square and Pd evaluated on the noncentral
    one with ``lambda = 2 Es/N0``.
    """
    if es_over_n0 < 0:
        raise ValueError(f"es_over_n0 must be non-negative, got {es_over_n0}")
    if time_bandwidth <= 0:
        raise ValueError(f"time_bandwidth must be positive, got {time_bandwidth}")
    if not 0.0 < pfa < 1.0:
        raise ValueError(f"pfa must be in (0, 1), got {pfa}")
    dof = 2.0 * time_bandwidth
    threshold = stats.chi2.isf(pfa, dof)
    return float(stats.ncx2.sf(threshold, dof, 2.0 * es_over_n0))


@dataclass(frozen=True)
class EnergyDetector:
    """A parameterised energy-detection receiver.

    Attributes
    ----------
    time_bandwidth:
        Integration-window time-bandwidth product (TW).
    pfa:
        Per-slot false-alarm probability the threshold is set for.
    noise_figure_db:
        Receiver noise figure (sets N0 through kTF).
    """

    time_bandwidth: float = 5.0
    pfa: float = 1e-3
    noise_figure_db: float = 6.0

    def __post_init__(self) -> None:
        if self.time_bandwidth <= 0:
            raise ValueError(f"time_bandwidth must be positive, got {self.time_bandwidth}")
        if not 0.0 < self.pfa < 1.0:
            raise ValueError(f"pfa must be in (0, 1), got {self.pfa}")

    @property
    def n0_w_per_hz(self) -> float:
        """Input-referred one-sided noise PSD."""
        return noise_psd_w_per_hz(self.noise_figure_db)

    def pd_for_energy(self, rx_energy_j: float) -> float:
        """Detection probability for a received pulse energy."""
        return detection_probability(
            rx_energy_j / self.n0_w_per_hz, self.time_bandwidth, self.pfa
        )

    def erasure_prob_for_energy(self, rx_energy_j: float) -> float:
        """Miss probability (1 - Pd): feeds the pulse-domain channel."""
        return 1.0 - self.pd_for_energy(rx_energy_j)

    def false_pulse_rate_hz(self, symbol_period_s: float) -> float:
        """False alarms per second when slots are checked continuously."""
        if symbol_period_s <= 0:
            raise ValueError(f"symbol_period_s must be positive, got {symbol_period_s}")
        return self.pfa / symbol_period_s
