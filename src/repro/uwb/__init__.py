"""IR-UWB link substrate: pulses, modulation, AER, packets, channel, RX."""

from .aer import AERConfig, aer_decode, aer_encode
from .channel import UWBChannel, friis_path_loss_db, received_energy_j, transmit_batch
from .link import (
    LinkConfig,
    LinkResult,
    packet_baseline_accounting,
    simulate_link,
    simulate_link_batch,
)
from .modulation import (
    PulseTrain,
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)
from .packets import (
    DepacketizeResult,
    PacketFormat,
    crc8,
    depacketize,
    packetize,
    payload_symbol_count,
)
from .pulse import (
    PulseShape,
    check_fcc_compliance,
    fcc_indoor_mask_dbm_per_mhz,
    gaussian_derivative,
    pulse_spectrum_dbm_per_mhz,
    pulse_waveform,
)
from .receiver import EnergyDetector, detection_probability, noise_psd_w_per_hz

__all__ = [
    "AERConfig",
    "aer_decode",
    "aer_encode",
    "UWBChannel",
    "friis_path_loss_db",
    "received_energy_j",
    "transmit_batch",
    "LinkConfig",
    "LinkResult",
    "packet_baseline_accounting",
    "simulate_link",
    "simulate_link_batch",
    "PulseTrain",
    "ook_demodulate",
    "ook_modulate",
    "ppm_demodulate",
    "ppm_modulate",
    "DepacketizeResult",
    "PacketFormat",
    "crc8",
    "depacketize",
    "packetize",
    "payload_symbol_count",
    "PulseShape",
    "check_fcc_compliance",
    "fcc_indoor_mask_dbm_per_mhz",
    "gaussian_derivative",
    "pulse_spectrum_dbm_per_mhz",
    "pulse_waveform",
    "EnergyDetector",
    "detection_probability",
    "noise_psd_w_per_hz",
]
