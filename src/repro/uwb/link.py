"""End-to-end IR-UWB link simulation and accounting.

Glues the pieces together: event stream -> OOK/PPM pulse train -> channel
(erasures/jitter/false pulses, optionally derived from a link budget and
the energy detector) -> demodulated event stream, with the symbol / pulse /
energy bookkeeping the paper's Sec. III-B comparison is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.events import EventStream
from .channel import UWBChannel, received_energy_j, transmit_batch
from .modulation import (
    PulseTrain,
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)
from .packets import PacketFormat, payload_symbol_count
from .receiver import EnergyDetector

__all__ = [
    "LinkConfig",
    "LinkResult",
    "simulate_link",
    "simulate_link_batch",
    "packet_baseline_accounting",
]


@dataclass(frozen=True)
class LinkConfig:
    """Physical-layer operating point of the event link.

    Attributes
    ----------
    symbol_period_s:
        Symbol slot duration (ref. [7]-class transceivers run ~Mpulse/s;
        10 us slots keep event bursts far shorter than the 0.5 ms minimum
        event spacing at the 2 kHz clock).
    pulse_energy_pj:
        TX energy per radiated pulse (tens of pJ for the all-digital
        transmitter of ref. [11]).
    modulation:
        "ook" (paper default; '0' payload bits are silent) or "ppm".
    distance_m, path_loss_exp, centre_freq_hz:
        Link-budget inputs used when a detector is supplied.
    """

    symbol_period_s: float = 1e-5
    pulse_energy_pj: float = 30.0
    modulation: str = "ook"
    distance_m: float = 1.0
    path_loss_exp: float = 2.0
    centre_freq_hz: float = 2.35e9

    def __post_init__(self) -> None:
        if self.symbol_period_s <= 0:
            raise ValueError(f"symbol_period_s must be positive, got {self.symbol_period_s}")
        if self.pulse_energy_pj < 0:
            raise ValueError(f"pulse_energy_pj must be non-negative, got {self.pulse_energy_pj}")
        if self.modulation not in ("ook", "ppm"):
            raise ValueError(f"modulation must be 'ook' or 'ppm', got {self.modulation!r}")
        if self.distance_m <= 0:
            raise ValueError(f"distance_m must be positive, got {self.distance_m}")

    def channel_from_budget(self, detector: EnergyDetector) -> UWBChannel:
        """Derive the pulse-domain channel from the link budget + detector."""
        rx_energy = received_energy_j(
            self.pulse_energy_pj * 1e-12,
            self.distance_m,
            centre_freq_hz=self.centre_freq_hz,
            path_loss_exp=self.path_loss_exp,
        )
        return UWBChannel(
            erasure_prob=detector.erasure_prob_for_energy(rx_energy),
            false_pulse_rate_hz=0.0,  # slot-gated RX: negligible at low PRF
        )


@dataclass(frozen=True)
class LinkResult:
    """Outcome of one link simulation.

    Attributes
    ----------
    tx_stream / rx_stream:
        Events in and events out.
    train:
        The transmitted pulse train.
    n_symbols:
        Symbol slots occupied (the paper's Sec. III-B unit).
    n_pulses:
        Pulses actually radiated (TX energy unit).
    tx_energy_j:
        Radiated energy: ``n_pulses * pulse_energy``.
    event_delivery_ratio:
        Received events / transmitted events (spurious events can push it
        above 1; see ``level_error_ratio`` for payload integrity).
    level_error_ratio:
        Fraction of delivered events whose decoded level differs from the
        transmitted one (0 when the stream carries no levels).
    """

    tx_stream: EventStream
    rx_stream: EventStream
    train: PulseTrain
    n_symbols: int
    n_pulses: int
    tx_energy_j: float
    event_delivery_ratio: float
    level_error_ratio: float


def _match_levels(tx: EventStream, rx: EventStream, tol_s: float) -> "tuple[int, int]":
    """Count (delivered, level-errors) by nearest-time event matching.

    Whole-array: every RX event picks its nearest TX neighbour with one
    ``np.searchsorted``, and matching is **one-to-one** — when several RX
    events claim the same TX event (e.g. a spurious burst next to a real
    one), only the earliest RX event is counted as delivered.  The old
    per-event loop let every claimant count, overstating delivery.
    """
    if tx.n_events == 0 or rx.n_events == 0:
        return 0, 0
    idx = np.searchsorted(tx.times, rx.times)
    left = np.clip(idx - 1, 0, tx.n_events - 1)
    right = np.clip(idx, 0, tx.n_events - 1)
    d_left = np.abs(tx.times[left] - rx.times)
    d_right = np.abs(tx.times[right] - rx.times)
    use_right = d_right < d_left
    candidate = np.where(use_right, right, left)
    distance = np.where(use_right, d_right, d_left)
    in_tol = np.flatnonzero(distance <= tol_s)
    if in_tol.size == 0:
        return 0, 0
    # RX and TX times are sorted, so candidates are non-decreasing; the
    # first claimant of each TX event (greedy by time) wins the match.
    claims = candidate[in_tol]
    winners = np.concatenate([[True], claims[1:] != claims[:-1]])
    delivered = int(np.count_nonzero(winners))
    errors = 0
    if tx.levels is not None and rx.levels is not None:
        matched_tx = claims[winners]
        matched_rx = in_tol[winners]
        errors = int(np.count_nonzero(tx.levels[matched_tx] != rx.levels[matched_rx]))
    return delivered, errors


def _link_result(
    stream: EventStream,
    rx_stream: EventStream,
    train: PulseTrain,
    config: "LinkConfig",
    channel: UWBChannel,
) -> "LinkResult":
    """Score one transported stream (shared by the one-shot and batch paths)."""
    delivered, errors = _match_levels(
        stream, rx_stream, tol_s=config.symbol_period_s + 4 * channel.jitter_rms_s
    )
    n_tx = stream.n_events
    return LinkResult(
        tx_stream=stream,
        rx_stream=rx_stream,
        train=train,
        n_symbols=train.n_symbols,
        n_pulses=train.n_pulses,
        tx_energy_j=train.n_pulses * config.pulse_energy_pj * 1e-12,
        event_delivery_ratio=(rx_stream.n_events / n_tx) if n_tx else 0.0,
        level_error_ratio=(errors / delivered) if delivered else 0.0,
    )


def simulate_link(
    stream: EventStream,
    config: "LinkConfig | None" = None,
    channel: "UWBChannel | None" = None,
    detector: "EnergyDetector | None" = None,
    rng: "np.random.Generator | None" = None,
) -> LinkResult:
    """Transport an event stream over the behavioural IR-UWB link.

    ``channel`` wins if both ``channel`` and ``detector`` are given;
    with neither, the link is ideal.
    """
    config = config if config is not None else LinkConfig()
    if channel is None:
        channel = (
            config.channel_from_budget(detector) if detector is not None else UWBChannel()
        )

    bits_per_event = stream.symbols_per_event - 1
    if config.modulation == "ook":
        train = ook_modulate(stream, config.symbol_period_s, bits_per_event)
    else:
        train = ppm_modulate(stream, config.symbol_period_s, bits_per_event)

    rx_times = channel.transmit(train, rng=rng)

    if config.modulation == "ook":
        rx_stream = ook_demodulate(
            rx_times, stream.duration_s, config.symbol_period_s, bits_per_event,
            clock_hz=stream.clock_hz,
        )
    else:
        rx_stream = ppm_demodulate(
            rx_times, stream.duration_s, config.symbol_period_s, bits_per_event,
            clock_hz=stream.clock_hz,
        )
    return _link_result(stream, rx_stream, train, config, channel)


def simulate_link_batch(
    streams: "list[EventStream]",
    config: "LinkConfig | None" = None,
    channel: "UWBChannel | list[UWBChannel] | None" = None,
    detector: "EnergyDetector | None" = None,
    rng: "np.random.Generator | None" = None,
) -> "list[LinkResult]":
    """Transport a whole batch of event streams over the IR-UWB link.

    The batch analogue of :func:`simulate_link`: every stream is
    modulated, sent through the channel with one RNG and whole-array
    erasure/jitter/false-pulse draws (:func:`repro.uwb.channel.transmit_batch`),
    demodulated by the vectorised demodulators, and scored with the
    vectorised one-to-one matcher.  ``channel`` may be a single
    :class:`UWBChannel` shared by every stream or one channel per stream
    (e.g. an erasure-probability sweep over the same stream).

    On an ideal channel the results are bit-identical to calling
    :func:`simulate_link` per stream; on a noisy channel the *noise
    realisation* differs from per-stream calls (the batch shares one
    draw sequence across streams) but every stage downstream of the
    received pulse times is still bit-identical.
    """
    config = config if config is not None else LinkConfig()
    streams = list(streams)
    if not streams:
        return []
    if channel is None:
        channel = (
            config.channel_from_budget(detector) if detector is not None else UWBChannel()
        )
    channels = (
        [channel] * len(streams) if isinstance(channel, UWBChannel) else list(channel)
    )
    if len(channels) != len(streams):
        raise ValueError(
            f"got {len(streams)} streams but {len(channels)} channels"
        )

    modulate = ook_modulate if config.modulation == "ook" else ppm_modulate
    demodulate = ook_demodulate if config.modulation == "ook" else ppm_demodulate
    # Modulation is pure, so a stream repeated in the batch (the channel
    # sweeps transmit one stream through many channels) is modulated once.
    train_cache: "dict[int, PulseTrain]" = {}
    trains = []
    for stream in streams:
        train = train_cache.get(id(stream))
        if train is None:
            train = modulate(stream, config.symbol_period_s, stream.symbols_per_event - 1)
            train_cache[id(stream)] = train
        trains.append(train)
    rx_times_per_stream = transmit_batch(trains, channels, rng=rng)

    results = []
    for stream, ch, train, rx_times in zip(
        streams, channels, trains, rx_times_per_stream
    ):
        rx_stream = demodulate(
            rx_times,
            stream.duration_s,
            config.symbol_period_s,
            stream.symbols_per_event - 1,
            clock_hz=stream.clock_hz,
        )
        results.append(_link_result(stream, rx_stream, train, config, ch))
    return results


def packet_baseline_accounting(
    n_samples: int,
    adc_bits: int = 12,
    fmt: "PacketFormat | None" = None,
    pulse_energy_pj: float = 30.0,
    mean_bit: float = 0.5,
) -> "dict[str, float]":
    """Symbol/pulse/energy accounting for the packet-based ADC baseline.

    Returns both the paper's payload-only count (``12 x n_samples``) and
    the overhead-inclusive one; OOK pulse count assumes ``mean_bit``
    fraction of '1' bits.
    """
    fmt = fmt if fmt is not None else PacketFormat(adc_bits=adc_bits)
    if fmt.adc_bits != adc_bits:
        raise ValueError(
            f"fmt.adc_bits ({fmt.adc_bits}) must match adc_bits ({adc_bits})"
        )
    if not 0.0 <= mean_bit <= 1.0:
        raise ValueError(f"mean_bit must be in [0, 1], got {mean_bit}")
    payload = payload_symbol_count(n_samples, adc_bits)
    total = fmt.total_bits(n_samples)
    pulses = total * mean_bit
    return {
        "payload_symbols": float(payload),
        "total_symbols": float(total),
        "n_pulses_ook": float(pulses),
        "tx_energy_j": float(pulses * pulse_energy_pj * 1e-12),
    }
