"""Behavioural UWB channel: path loss, erasures, jitter, spurious pulses.

Short-range WBAN link model.  Two layers are provided:

* a *link-budget* layer (:func:`friis_path_loss_db`,
  :func:`received_energy_j`) that turns TX pulse energy and distance into
  an RX SNR for the energy-detection receiver;
* a *pulse-domain* layer (:class:`UWBChannel`) that transforms a pulse
  train into the received pulse times: each pulse survives with the
  detection probability, picks up Gaussian timing jitter, and false alarms
  inject spurious pulses at a Poisson rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modulation import PulseTrain

__all__ = ["friis_path_loss_db", "received_energy_j", "UWBChannel", "transmit_batch"]

_C_M_PER_S = 299_792_458.0


def friis_path_loss_db(
    distance_m: float, centre_freq_hz: float = 2.35e9, path_loss_exp: float = 2.0
) -> float:
    """Free-space (generalised-exponent) path loss in dB.

    ``PL = 20 log10(4 pi d0 f / c) + 10 n log10(d / d0)`` with d0 = 1 m.
    The default centre frequency is mid-band of the 0.3-4.4 GHz
    transmitter of ref. [11]; ``path_loss_exp`` ~ 2 free space, 3-4 on/
    around the body.
    """
    if distance_m <= 0:
        raise ValueError(f"distance_m must be positive, got {distance_m}")
    if centre_freq_hz <= 0:
        raise ValueError(f"centre_freq_hz must be positive, got {centre_freq_hz}")
    if path_loss_exp <= 0:
        raise ValueError(f"path_loss_exp must be positive, got {path_loss_exp}")
    pl_1m = 20.0 * np.log10(4.0 * np.pi * 1.0 * centre_freq_hz / _C_M_PER_S)
    return float(pl_1m + 10.0 * path_loss_exp * np.log10(max(distance_m, 1e-9)))


def received_energy_j(
    tx_energy_j: float,
    distance_m: float,
    centre_freq_hz: float = 2.35e9,
    path_loss_exp: float = 2.0,
    antenna_gains_db: float = 0.0,
) -> float:
    """Per-pulse energy at the receiver input."""
    if tx_energy_j < 0:
        raise ValueError(f"tx_energy_j must be non-negative, got {tx_energy_j}")
    pl_db = friis_path_loss_db(distance_m, centre_freq_hz, path_loss_exp)
    return float(tx_energy_j * 10.0 ** ((antenna_gains_db - pl_db) / 10.0))


@dataclass(frozen=True)
class UWBChannel:
    """Pulse-domain channel.

    Attributes
    ----------
    erasure_prob:
        Probability that a radiated pulse is *not* detected (from the
        energy-detector miss rate; compute it with
        :mod:`repro.uwb.receiver` or set it directly for robustness
        sweeps — the paper's "artifacts effect is similar to pulse
        missing" experiment).
    jitter_rms_s:
        RMS Gaussian timing jitter added to each detected pulse.
    false_pulse_rate_hz:
        Poisson rate of spurious detections (receiver false alarms or
        in-band interferers).
    """

    erasure_prob: float = 0.0
    jitter_rms_s: float = 0.0
    false_pulse_rate_hz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.erasure_prob <= 1.0:
            raise ValueError(f"erasure_prob must be in [0, 1], got {self.erasure_prob}")
        if self.jitter_rms_s < 0:
            raise ValueError(f"jitter_rms_s must be non-negative, got {self.jitter_rms_s}")
        if self.false_pulse_rate_hz < 0:
            raise ValueError(
                f"false_pulse_rate_hz must be non-negative, got {self.false_pulse_rate_hz}"
            )

    @property
    def is_ideal(self) -> bool:
        """True when the channel is transparent."""
        return (
            self.erasure_prob == 0.0
            and self.jitter_rms_s == 0.0
            and self.false_pulse_rate_hz == 0.0
        )

    def transmit(self, train: PulseTrain, rng: "np.random.Generator | None" = None) -> np.ndarray:
        """Return the received pulse times for a transmitted train."""
        times = np.asarray(train.pulse_times, dtype=float)
        if self.is_ideal:
            return times.copy()
        if rng is None:
            raise ValueError("a non-ideal channel requires an rng")
        if self.erasure_prob > 0:
            times = times[rng.random(times.size) >= self.erasure_prob]
        if self.jitter_rms_s > 0:
            times = times + self.jitter_rms_s * rng.standard_normal(times.size)
        if self.false_pulse_rate_hz > 0:
            n_false = rng.poisson(self.false_pulse_rate_hz * train.duration_s)
            times = np.concatenate([times, rng.uniform(0, train.duration_s, n_false)])
        times = np.clip(times, 0.0, train.duration_s)
        return np.sort(times)

    def transmit_batch(
        self, trains: "list[PulseTrain]", rng: "np.random.Generator | None" = None
    ) -> "list[np.ndarray]":
        """Transmit many trains through this channel with batched draws."""
        return transmit_batch(trains, [self] * len(trains), rng=rng)


def transmit_batch(
    trains: "list[PulseTrain]",
    channels: "list[UWBChannel]",
    rng: "np.random.Generator | None" = None,
) -> "list[np.ndarray]":
    """Received pulse times for many trains, one channel each.

    The whole batch is realised from *one* RNG with whole-array draws:
    one uniform draw decides every erasure, one normal draw jitters every
    surviving pulse, one Poisson draw sizes every train's false-pulse
    count, and one sort/split hands the per-train times back.  Channels
    may differ per train (e.g. an erasure-probability sweep); ideal
    channels ride along for free (their pulses always survive the shared
    draws unchanged).
    """
    if len(trains) != len(channels):
        raise ValueError(
            f"got {len(trains)} trains but {len(channels)} channels"
        )
    if not trains:
        return []
    if all(c.is_ideal for c in channels):
        return [np.asarray(t.pulse_times, dtype=float).copy() for t in trains]
    if rng is None:
        raise ValueError("a non-ideal channel requires an rng")

    n_streams = len(trains)
    sizes = np.array([t.pulse_times.size for t in trains], dtype=np.int64)
    durations = np.array([t.duration_s for t in trains], dtype=float)
    times = (
        np.concatenate([np.asarray(t.pulse_times, dtype=float) for t in trains])
        if sizes.sum()
        else np.zeros(0)
    )
    segment = np.repeat(np.arange(n_streams), sizes)

    erasure = np.array([c.erasure_prob for c in channels])
    jitter = np.array([c.jitter_rms_s for c in channels])
    false_rate = np.array([c.false_pulse_rate_hz for c in channels])

    if np.any(erasure > 0):
        keep = rng.random(times.size) >= erasure[segment]
        times = times[keep]
        segment = segment[keep]
    if np.any(jitter > 0):
        times = times + jitter[segment] * rng.standard_normal(times.size)
    if np.any(false_rate > 0):
        n_false = rng.poisson(false_rate * durations)
        false_segment = np.repeat(np.arange(n_streams), n_false)
        false_times = rng.random(int(n_false.sum())) * durations[false_segment]
        times = np.concatenate([times, false_times])
        segment = np.concatenate([segment, false_segment])
    # Per-train semantics match `transmit`: an ideal train passes through
    # untouched (no clipping — payload pulses may legitimately trail past
    # duration_s), a noisy train is clipped to the observation window.
    clip_row = np.array([not c.is_ideal for c in channels])[segment]
    times = np.where(clip_row, np.clip(times, 0.0, durations[segment]), times)

    order = np.lexsort((times, segment))
    times = times[order]
    segment = segment[order]
    bounds = np.searchsorted(segment, np.arange(1, n_streams))
    return np.split(times, bounds)
