"""Behavioural UWB channel: path loss, erasures, jitter, spurious pulses.

Short-range WBAN link model.  Two layers are provided:

* a *link-budget* layer (:func:`friis_path_loss_db`,
  :func:`received_energy_j`) that turns TX pulse energy and distance into
  an RX SNR for the energy-detection receiver;
* a *pulse-domain* layer (:class:`UWBChannel`) that transforms a pulse
  train into the received pulse times: each pulse survives with the
  detection probability, picks up Gaussian timing jitter, and false alarms
  inject spurious pulses at a Poisson rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modulation import PulseTrain

__all__ = ["friis_path_loss_db", "received_energy_j", "UWBChannel"]

_C_M_PER_S = 299_792_458.0


def friis_path_loss_db(
    distance_m: float, centre_freq_hz: float = 2.35e9, path_loss_exp: float = 2.0
) -> float:
    """Free-space (generalised-exponent) path loss in dB.

    ``PL = 20 log10(4 pi d0 f / c) + 10 n log10(d / d0)`` with d0 = 1 m.
    The default centre frequency is mid-band of the 0.3-4.4 GHz
    transmitter of ref. [11]; ``path_loss_exp`` ~ 2 free space, 3-4 on/
    around the body.
    """
    if distance_m <= 0:
        raise ValueError(f"distance_m must be positive, got {distance_m}")
    if centre_freq_hz <= 0:
        raise ValueError(f"centre_freq_hz must be positive, got {centre_freq_hz}")
    if path_loss_exp <= 0:
        raise ValueError(f"path_loss_exp must be positive, got {path_loss_exp}")
    pl_1m = 20.0 * np.log10(4.0 * np.pi * 1.0 * centre_freq_hz / _C_M_PER_S)
    return float(pl_1m + 10.0 * path_loss_exp * np.log10(max(distance_m, 1e-9)))


def received_energy_j(
    tx_energy_j: float,
    distance_m: float,
    centre_freq_hz: float = 2.35e9,
    path_loss_exp: float = 2.0,
    antenna_gains_db: float = 0.0,
) -> float:
    """Per-pulse energy at the receiver input."""
    if tx_energy_j < 0:
        raise ValueError(f"tx_energy_j must be non-negative, got {tx_energy_j}")
    pl_db = friis_path_loss_db(distance_m, centre_freq_hz, path_loss_exp)
    return float(tx_energy_j * 10.0 ** ((antenna_gains_db - pl_db) / 10.0))


@dataclass(frozen=True)
class UWBChannel:
    """Pulse-domain channel.

    Attributes
    ----------
    erasure_prob:
        Probability that a radiated pulse is *not* detected (from the
        energy-detector miss rate; compute it with
        :mod:`repro.uwb.receiver` or set it directly for robustness
        sweeps — the paper's "artifacts effect is similar to pulse
        missing" experiment).
    jitter_rms_s:
        RMS Gaussian timing jitter added to each detected pulse.
    false_pulse_rate_hz:
        Poisson rate of spurious detections (receiver false alarms or
        in-band interferers).
    """

    erasure_prob: float = 0.0
    jitter_rms_s: float = 0.0
    false_pulse_rate_hz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.erasure_prob <= 1.0:
            raise ValueError(f"erasure_prob must be in [0, 1], got {self.erasure_prob}")
        if self.jitter_rms_s < 0:
            raise ValueError(f"jitter_rms_s must be non-negative, got {self.jitter_rms_s}")
        if self.false_pulse_rate_hz < 0:
            raise ValueError(
                f"false_pulse_rate_hz must be non-negative, got {self.false_pulse_rate_hz}"
            )

    @property
    def is_ideal(self) -> bool:
        """True when the channel is transparent."""
        return (
            self.erasure_prob == 0.0
            and self.jitter_rms_s == 0.0
            and self.false_pulse_rate_hz == 0.0
        )

    def transmit(self, train: PulseTrain, rng: "np.random.Generator | None" = None) -> np.ndarray:
        """Return the received pulse times for a transmitted train."""
        times = np.asarray(train.pulse_times, dtype=float)
        if self.is_ideal:
            return times.copy()
        if rng is None:
            raise ValueError("a non-ideal channel requires an rng")
        if self.erasure_prob > 0:
            times = times[rng.random(times.size) >= self.erasure_prob]
        if self.jitter_rms_s > 0:
            times = times + self.jitter_rms_s * rng.standard_normal(times.size)
        if self.false_pulse_rate_hz > 0:
            n_false = rng.poisson(self.false_pulse_rate_hz * train.duration_s)
            times = np.concatenate([times, rng.uniform(0, train.duration_s, n_false)])
        times = np.clip(times, 0.0, train.duration_s)
        return np.sort(times)
