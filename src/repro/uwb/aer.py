"""Address-Event Representation (AER) for multi-channel transmission.

The paper's system context (refs. [9], [12]) is multi-channel: several
sEMG electrodes share one IR-UWB link, and each event is tagged with its
source address.  An AER word here is ``(address, level)``: the channel
address bits are prepended to the (optional) threshold-level payload, so a
D-ATC event on an ``n_channels``-system costs
``1 + ceil(log2(n_channels)) + dac_bits`` symbol slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.events import EventStream

__all__ = ["AERConfig", "aer_encode", "aer_decode"]


@dataclass(frozen=True)
class AERConfig:
    """Multi-channel AER framing parameters.

    Attributes
    ----------
    n_channels:
        Number of sensing channels sharing the link.
    level_bits:
        Payload bits per event (the DAC resolution for D-ATC, 0 for ATC).
    """

    n_channels: int = 4
    level_bits: int = 4

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {self.n_channels}")
        if self.level_bits < 0:
            raise ValueError(f"level_bits must be non-negative, got {self.level_bits}")

    @property
    def address_bits(self) -> int:
        """Bits needed to address every channel."""
        return max(1, int(np.ceil(np.log2(self.n_channels)))) if self.n_channels > 1 else 0

    @property
    def symbols_per_event(self) -> int:
        """Marker + address + payload slots per event."""
        return 1 + self.address_bits + self.level_bits


def aer_encode(
    streams: "list[EventStream]", config: AERConfig, min_spacing_s: float = 0.0
) -> EventStream:
    """Merge per-channel streams into one addressed stream.

    The returned stream's ``levels`` pack ``(address << level_bits) |
    level`` so the existing modulators transport AER words unchanged.
    Simultaneous events on different channels are arbitrated by channel
    order (lowest address first), matching a fixed-priority AER arbiter.

    ``min_spacing_s`` models the arbiter's serialisation: colliding (or
    too-close) events are queued and re-timestamped at least that far
    apart — required when the downstream modulator needs whole symbol
    bursts per event.  Events the queue cannot fit before the end of the
    observation window are dropped (arbiter overflow).  Serialisation is
    computed in closed form (one running max); for non-dyadic
    times/spacing the re-timestamps can differ from the sequential queue
    by float-rounding ulps.
    """
    if min_spacing_s < 0:
        raise ValueError(f"min_spacing_s must be non-negative, got {min_spacing_s}")
    if len(streams) != config.n_channels:
        raise ValueError(
            f"expected {config.n_channels} streams, got {len(streams)}"
        )
    duration = streams[0].duration_s
    times = []
    words = []
    for address, stream in enumerate(streams):
        if stream.duration_s != duration:
            raise ValueError("all channels must share duration_s")
        if config.level_bits:
            if stream.levels is None:
                raise ValueError(f"channel {address} has no levels but level_bits > 0")
            levels = stream.levels
            if np.any(levels < 0) or np.any(levels >= (1 << config.level_bits)):
                raise ValueError(f"channel {address} levels exceed level_bits")
        else:
            levels = np.zeros(stream.n_events, dtype=np.int64)
        times.append(stream.times)
        words.append((address << config.level_bits) | levels)
    all_times = np.concatenate(times)
    all_words = np.concatenate(words)
    # Stable sort keeps the lowest-address channel first on exact ties.
    addresses = all_words >> config.level_bits
    order = np.lexsort((addresses, all_times))
    merged_times = all_times[order]
    merged_words = all_words[order]

    if min_spacing_s > 0 and merged_times.size:
        # The arbiter recurrence ``last = max(t, last + s)`` unrolls to
        # ``serialized_i = s*i + max_{j<=i}(t_j - s*j)`` — one running max.
        # Algebraically identical to the sequential queue; float rounding
        # can differ by ulps from iterated ``last + s`` additions (exact,
        # and therefore bit-identical, when times/spacing are dyadic).
        slack = np.arange(merged_times.size) * min_spacing_s
        serialized = slack + np.maximum.accumulate(merged_times - slack)
        keep = serialized <= duration
        merged_times = serialized[keep]
        merged_words = merged_words[keep]

    return EventStream(
        times=merged_times,
        duration_s=duration,
        levels=merged_words,
        clock_hz=streams[0].clock_hz,
        symbols_per_event=config.symbols_per_event,
    )


def aer_decode(stream: EventStream, config: AERConfig) -> "list[EventStream]":
    """Split an addressed stream back into per-channel streams."""
    if stream.levels is None:
        raise ValueError("an AER stream must carry address words")
    addresses = stream.levels >> config.level_bits
    levels = stream.levels & ((1 << config.level_bits) - 1)
    out = []
    for address in range(config.n_channels):
        mask = addresses == address
        out.append(
            EventStream(
                times=stream.times[mask],
                duration_s=stream.duration_s,
                levels=levels[mask] if config.level_bits else None,
                clock_hz=stream.clock_hz,
                symbols_per_event=1 + config.level_bits,
            )
        )
    return out
