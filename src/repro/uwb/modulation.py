"""Event-to-symbol modulation for the IR-UWB link.

Paper Fig. 2(E): every D-ATC event is radiated as a short burst — a start
marker followed by the 4-bit ``Set_Vth`` level — using OOK (On-Off
Keying), i.e. a UWB pulse in a symbol slot encodes '1' and silence encodes
'0'.  Plain ATC radiates the single marker pulse only.

The symbol accounting of Sec. III-B counts *symbol slots* (5 per D-ATC
event, 1 per ATC event); the *pulse* count — which is what the transmit
energy scales with — is lower for OOK since '0' bits are free.  PPM
(pulse-position modulation) is provided as an alternative where every bit
costs one pulse but framing is self-clocking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.events import EventStream

__all__ = ["PulseTrain", "ook_modulate", "ook_demodulate", "ppm_modulate", "ppm_demodulate"]


@dataclass(frozen=True)
class PulseTrain:
    """Radiated pulses: times (s) plus the slot bookkeeping.

    Attributes
    ----------
    pulse_times:
        Time of every *radiated* pulse (sorted).
    n_symbols:
        Number of symbol slots the train occupies (radiated or silent).
    symbol_period_s:
        Slot duration.
    duration_s:
        Observation window.
    scheme:
        "ook" or "ppm".
    bits_per_event:
        Payload bits following each marker (0 for plain ATC).
    """

    pulse_times: np.ndarray
    n_symbols: int
    symbol_period_s: float
    duration_s: float
    scheme: str
    bits_per_event: int

    @property
    def n_pulses(self) -> int:
        """Radiated pulses (the TX energy driver)."""
        return int(self.pulse_times.size)


def _event_bits(levels: "np.ndarray | None", n_events: int, bits_per_event: int) -> np.ndarray:
    """Per-event payload bit matrix (MSB first), shape (n_events, bits)."""
    if bits_per_event == 0:
        return np.zeros((n_events, 0), dtype=np.uint8)
    if levels is None:
        raise ValueError("payload bits requested but the stream has no levels")
    if np.any(levels < 0) or np.any(levels >= (1 << bits_per_event)):
        raise ValueError(f"levels exceed {bits_per_event} bits")
    shifts = np.arange(bits_per_event - 1, -1, -1)
    return ((levels[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def ook_modulate(
    stream: EventStream,
    symbol_period_s: float = 1e-5,
    bits_per_event: "int | None" = None,
) -> PulseTrain:
    """OOK-modulate an event stream.

    Each event occupies ``1 + bits_per_event`` slots starting at the event
    time: the marker pulse, then one slot per payload bit ('1' = pulse,
    '0' = silence).  ``bits_per_event`` defaults to
    ``stream.symbols_per_event - 1``.
    """
    if symbol_period_s <= 0:
        raise ValueError(f"symbol_period_s must be positive, got {symbol_period_s}")
    if bits_per_event is None:
        bits_per_event = stream.symbols_per_event - 1
    burst_span = (1 + bits_per_event) * symbol_period_s
    if stream.n_events > 1:
        gaps = np.diff(stream.times)
        # Strictly back-to-back bursts are legal; the tolerance absorbs
        # floating-point noise in exactly-spaced (AER-serialised) streams.
        if np.any(gaps < burst_span * (1.0 - 1e-9)):
            raise ValueError(
                f"symbol_period_s={symbol_period_s} too long: event bursts of "
                f"{burst_span:.2e}s overlap (min gap {gaps.min():.2e}s)"
            )
    bits = _event_bits(stream.levels, stream.n_events, bits_per_event)
    times = [stream.times]  # marker pulses
    for b in range(bits_per_event):
        mask = bits[:, b] == 1
        times.append(stream.times[mask] + (b + 1) * symbol_period_s)
    pulse_times = np.sort(np.concatenate(times)) if times else np.zeros(0)
    return PulseTrain(
        pulse_times=pulse_times,
        n_symbols=stream.n_events * (1 + bits_per_event),
        symbol_period_s=symbol_period_s,
        duration_s=stream.duration_s,
        scheme="ook",
        bits_per_event=bits_per_event,
    )


def _burst_start_mask(
    pulse_times: np.ndarray, close_times: np.ndarray, side: str
) -> np.ndarray:
    """Greedy burst grouping, fully in numpy.

    The demodulators' outer loop is the recurrence "the first pulse opens a
    burst; every pulse up to that burst's close time joins it; the next
    pulse opens a new burst".  ``close_times[i]`` is the close time of a
    hypothetical burst opened by pulse ``i`` (``side='right'`` consumes
    pulses with ``t <= close``, ``'left'`` with ``t < close``).  The burst
    openers are the orbit of pulse 0 under ``nxt`` (the first pulse index
    past each close time); the orbit is materialised in O(log n) rounds of
    pointer doubling instead of a per-burst Python loop.
    """
    n = pulse_times.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    nxt = np.searchsorted(pulse_times, close_times, side=side)
    # A burst always consumes at least its opening pulse, even if rounding
    # makes close_times[i] collapse onto pulse_times[i].
    nxt = np.maximum(nxt, np.arange(1, n + 1))
    g = np.append(nxt, n)  # sentinel: the chain parks at n
    mask = np.zeros(n + 1, dtype=bool)
    mask[0] = True
    count = 1
    while True:
        mask[g[np.flatnonzero(mask)]] = True
        new_count = int(np.count_nonzero(mask))
        if new_count == count:
            break
        count = new_count
        g = g[g]
    return mask[:n]


def _pack_levels(
    n_bursts: int,
    bits_per_event: int,
    burst_of_pulse: np.ndarray,
    slot_of_pulse: np.ndarray,
    hit: np.ndarray,
) -> np.ndarray:
    """OR the per-pulse hits into a (burst, slot) bit matrix, then pack
    MSB-first levels with one shift-dot."""
    bit_matrix = np.zeros((n_bursts, bits_per_event), dtype=np.int64)
    bit_matrix[burst_of_pulse[hit], slot_of_pulse[hit]] = 1
    weights = (1 << np.arange(bits_per_event - 1, -1, -1)).astype(np.int64)
    return bit_matrix @ weights


def ook_demodulate(
    pulse_times: np.ndarray,
    duration_s: float,
    symbol_period_s: float,
    bits_per_event: int,
    clock_hz: float = 0.0,
) -> EventStream:
    """Greedy OOK demodulation back to an event stream (vectorised).

    The first pulse opens a burst: it is the marker, and the following
    ``bits_per_event`` slots are read as bits by checking whether a pulse
    falls within +-half a slot of each slot centre.  Pulses inside a burst
    window are consumed; the next pulse after the window opens a new
    burst.  Robust to erased payload pulses (read as '0', the OOK
    failure mode) and to spurious pulses (they open short fake bursts).

    Whole-array implementation: bursts are found with searchsorted +
    pointer doubling (:func:`_burst_start_mask`), every payload pulse is
    assigned its slot with one slot-offset matrix comparison, and levels
    are packed with a single shift-dot.  Bit-identical to the per-pulse
    reference loop (:func:`_ook_demodulate_loop`) for every pulse pattern,
    including erased, jittered, and spurious pulses.
    """
    pulse_times = np.sort(np.asarray(pulse_times, dtype=float))
    n = pulse_times.size
    if bits_per_event == 0 or n == 0:
        # Every pulse is its own single-slot event.
        return EventStream(
            times=pulse_times,
            duration_s=duration_s,
            levels=np.zeros(0, dtype=np.int64) if bits_per_event and n == 0 else None,
            clock_hz=clock_hz,
            symbols_per_event=1 + bits_per_event,
        )
    half = symbol_period_s / 2.0
    # Close of a burst opened at t: centre of the last payload slot + half
    # a slot, with the same float op order as the reference loop.
    span = bits_per_event * symbol_period_s
    close = (pulse_times + span) + half
    start = _burst_start_mask(pulse_times, close, side="right")
    burst_id = np.cumsum(start) - 1
    marker_times = pulse_times[start]

    payload = ~start
    p_times = pulse_times[payload]
    p_burst = burst_id[payload]
    p_marker = marker_times[p_burst]
    offsets = np.arange(1, bits_per_event + 1) * symbol_period_s
    centres = p_marker[:, None] + offsets[None, :]
    # Slot a pulse is consumed in: the first whose close it does not exceed.
    slot = np.sum(p_times[:, None] > centres + half, axis=1)
    hit = np.abs(p_times - (p_marker + offsets[slot])) <= half
    levels = _pack_levels(marker_times.size, bits_per_event, p_burst, slot, hit)
    return EventStream(
        times=marker_times,
        duration_s=duration_s,
        levels=levels,
        clock_hz=clock_hz,
        symbols_per_event=1 + bits_per_event,
    )


def _ook_demodulate_loop(
    pulse_times: np.ndarray,
    duration_s: float,
    symbol_period_s: float,
    bits_per_event: int,
    clock_hz: float = 0.0,
) -> EventStream:
    """Per-pulse reference implementation of :func:`ook_demodulate`.

    Kept as the ground truth the vectorised demodulator is asserted
    bit-identical to (property tests and the link throughput bench).
    """
    pulse_times = np.sort(np.asarray(pulse_times, dtype=float))
    half = symbol_period_s / 2.0
    events = []
    levels = []
    i = 0
    n = pulse_times.size
    while i < n:
        marker = pulse_times[i]
        level = 0
        j = i + 1
        for b in range(bits_per_event):
            slot_centre = marker + (b + 1) * symbol_period_s
            hit = False
            while j < n and pulse_times[j] <= slot_centre + half:
                if abs(pulse_times[j] - slot_centre) <= half:
                    hit = True
                j += 1
            level = (level << 1) | (1 if hit else 0)
        events.append(marker)
        levels.append(level)
        i = j
    return EventStream(
        times=np.asarray(events),
        duration_s=duration_s,
        levels=np.asarray(levels, dtype=np.int64) if bits_per_event else None,
        clock_hz=clock_hz,
        symbols_per_event=1 + bits_per_event,
    )


def ppm_modulate(
    stream: EventStream,
    symbol_period_s: float = 1e-5,
    bits_per_event: "int | None" = None,
) -> PulseTrain:
    """PPM-modulate an event stream.

    Every slot carries a pulse: '0' at the slot start, '1' delayed by half
    a slot.  Costs one pulse per symbol (more energy than OOK) but every
    bit is positively detected.
    """
    if symbol_period_s <= 0:
        raise ValueError(f"symbol_period_s must be positive, got {symbol_period_s}")
    if bits_per_event is None:
        bits_per_event = stream.symbols_per_event - 1
    burst_span = (1 + bits_per_event) * symbol_period_s
    if stream.n_events > 1 and np.any(
        np.diff(stream.times) < burst_span * (1.0 - 1e-9)
    ):
        raise ValueError("event bursts overlap; reduce symbol_period_s")
    bits = _event_bits(stream.levels, stream.n_events, bits_per_event)
    times = [stream.times]
    for b in range(bits_per_event):
        offset = (b + 1) * symbol_period_s + bits[:, b] * (symbol_period_s / 2.0)
        times.append(stream.times + offset)
    pulse_times = np.sort(np.concatenate(times))
    return PulseTrain(
        pulse_times=pulse_times,
        n_symbols=stream.n_events * (1 + bits_per_event),
        symbol_period_s=symbol_period_s,
        duration_s=stream.duration_s,
        scheme="ppm",
        bits_per_event=bits_per_event,
    )


def ppm_demodulate(
    pulse_times: np.ndarray,
    duration_s: float,
    symbol_period_s: float,
    bits_per_event: int,
    clock_hz: float = 0.0,
) -> EventStream:
    """Greedy PPM demodulation (marker + positioned payload pulses).

    Vectorised like :func:`ook_demodulate`; bit-identical to the reference
    loop (:func:`_ppm_demodulate_loop`) for any pulse pattern.
    """
    pulse_times = np.sort(np.asarray(pulse_times, dtype=float))
    n = pulse_times.size
    if bits_per_event == 0 or n == 0:
        return EventStream(
            times=pulse_times,
            duration_s=duration_s,
            levels=np.zeros(0, dtype=np.int64) if bits_per_event and n == 0 else None,
            clock_hz=clock_hz,
            symbols_per_event=1 + bits_per_event,
        )
    quarter = symbol_period_s / 4.0
    half = symbol_period_s / 2.0
    # A burst consumes pulses strictly before the end of its last slot.
    span = bits_per_event * symbol_period_s
    close = (pulse_times + span) + symbol_period_s
    start = _burst_start_mask(pulse_times, close, side="left")
    burst_id = np.cumsum(start) - 1
    marker_times = pulse_times[start]

    payload = ~start
    p_times = pulse_times[payload]
    p_burst = burst_id[payload]
    p_marker = marker_times[p_burst]
    offsets = np.arange(1, bits_per_event + 1) * symbol_period_s
    slot_starts = p_marker[:, None] + offsets[None, :]
    # Slot a pulse is consumed in: the first whose end it precedes.
    slot = np.sum(p_times[:, None] >= slot_starts + symbol_period_s, axis=1)
    hit = np.abs((p_times - (p_marker + offsets[slot])) - half) <= quarter
    levels = _pack_levels(marker_times.size, bits_per_event, p_burst, slot, hit)
    return EventStream(
        times=marker_times,
        duration_s=duration_s,
        levels=levels,
        clock_hz=clock_hz,
        symbols_per_event=1 + bits_per_event,
    )


def _ppm_demodulate_loop(
    pulse_times: np.ndarray,
    duration_s: float,
    symbol_period_s: float,
    bits_per_event: int,
    clock_hz: float = 0.0,
) -> EventStream:
    """Per-pulse reference implementation of :func:`ppm_demodulate`."""
    pulse_times = np.sort(np.asarray(pulse_times, dtype=float))
    quarter = symbol_period_s / 4.0
    events = []
    levels = []
    i = 0
    n = pulse_times.size
    while i < n:
        marker = pulse_times[i]
        level = 0
        j = i + 1
        for b in range(bits_per_event):
            slot_start = marker + (b + 1) * symbol_period_s
            bit = 0
            while j < n and pulse_times[j] < slot_start + symbol_period_s:
                dt = pulse_times[j] - slot_start
                if abs(dt - symbol_period_s / 2.0) <= quarter:
                    bit = 1
                j += 1
            level = (level << 1) | bit
        events.append(marker)
        levels.append(level)
        i = j
    return EventStream(
        times=np.asarray(events),
        duration_s=duration_s,
        levels=np.asarray(levels, dtype=np.int64) if bits_per_event else None,
        clock_hz=clock_hz,
        symbols_per_event=1 + bits_per_event,
    )
