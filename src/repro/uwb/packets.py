"""Packet-based ADC transmission — the paper's "standard system" baseline.

Sec. II: "To transmit the sEMG signal with a wireless transceiver, a
standard system would require an A-to-D converter and communication would
be packet-based.  Typically additional bits, e.g. header, Start-Frame-
Delimiter (SFD), identifier (ID) and Cyclic Redundancy Code (CRC) are
required".

Sec. III-B counts the *payload-only* cost for a 20 s wave at 12-bit/2.5 kHz:
``12 x 50000 = 600000`` symbols; overhead makes the real number larger.
This module implements the full framing (including a real CRC-8) so both
accountings are available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PacketFormat", "crc8", "packetize", "depacketize", "payload_symbol_count"]

_CRC8_POLY = 0x07  # CRC-8/ATM (x^8 + x^2 + x + 1)


def crc8(bits: np.ndarray, poly: int = _CRC8_POLY, init: int = 0x00) -> int:
    """CRC-8 over a bit array (MSB-first)."""
    bits = np.asarray(bits).astype(np.uint8)
    crc = init
    for bit in bits:
        crc ^= int(bit) << 7
        if crc & 0x80:
            crc = ((crc << 1) ^ poly) & 0xFF
        else:
            crc = (crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class PacketFormat:
    """Framing of the packet-based baseline.

    Defaults model a minimal sensor-node link: 8-bit preamble/header,
    8-bit SFD, 8-bit node ID, per-packet CRC-8, and ``samples_per_packet``
    ADC codes of ``adc_bits`` each.
    """

    header_bits: int = 8
    sfd_bits: int = 8
    id_bits: int = 8
    crc_bits: int = 8
    adc_bits: int = 12
    samples_per_packet: int = 8

    def __post_init__(self) -> None:
        for name in ("header_bits", "sfd_bits", "id_bits", "crc_bits", "adc_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.adc_bits < 1:
            raise ValueError(f"adc_bits must be >= 1, got {self.adc_bits}")
        if self.samples_per_packet < 1:
            raise ValueError(
                f"samples_per_packet must be >= 1, got {self.samples_per_packet}"
            )

    @property
    def overhead_bits(self) -> int:
        """Non-payload bits per packet."""
        return self.header_bits + self.sfd_bits + self.id_bits + self.crc_bits

    @property
    def payload_bits(self) -> int:
        """Payload bits per packet."""
        return self.adc_bits * self.samples_per_packet

    @property
    def packet_bits(self) -> int:
        """Total bits per packet."""
        return self.overhead_bits + self.payload_bits

    def n_packets(self, n_samples: int) -> int:
        """Packets needed for ``n_samples`` ADC codes (last one padded)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        return -(-n_samples // self.samples_per_packet)

    def total_bits(self, n_samples: int) -> int:
        """Total transmitted bits including framing overhead."""
        return self.n_packets(n_samples) * self.packet_bits


def payload_symbol_count(n_samples: int, adc_bits: int = 12) -> int:
    """The paper's Sec. III-B accounting: ``adc_bits * n_samples``.

    For the 20 s example wave: ``12 * 50000 = 600000`` symbols.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    if adc_bits < 1:
        raise ValueError(f"adc_bits must be >= 1, got {adc_bits}")
    return adc_bits * n_samples


def _int_to_bits(value: int, width: int) -> np.ndarray:
    shifts = np.arange(width - 1, -1, -1)
    return ((value >> shifts) & 1).astype(np.uint8)


def packetize(codes: np.ndarray, fmt: "PacketFormat | None" = None, node_id: int = 0x5A) -> np.ndarray:
    """Frame ADC codes into the full packet bit stream.

    The stream is the concatenation of packets: header (0xAA), SFD (0x7E),
    node ID, payload codes MSB-first, CRC-8 over ID+payload.
    """
    fmt = fmt if fmt is not None else PacketFormat()
    codes = np.asarray(codes, dtype=np.int64)
    if np.any(codes < 0) or np.any(codes >= (1 << fmt.adc_bits)):
        raise ValueError(f"codes exceed {fmt.adc_bits} bits")
    if not 0 <= node_id < (1 << fmt.id_bits) and fmt.id_bits:
        raise ValueError(f"node_id exceeds {fmt.id_bits} bits")
    n_packets = fmt.n_packets(codes.size)
    padded = np.zeros(n_packets * fmt.samples_per_packet, dtype=np.int64)
    padded[: codes.size] = codes

    out = []
    header = _int_to_bits(0xAA & ((1 << fmt.header_bits) - 1), fmt.header_bits)
    sfd = _int_to_bits(0x7E & ((1 << fmt.sfd_bits) - 1), fmt.sfd_bits)
    ident = _int_to_bits(node_id, fmt.id_bits)
    for p in range(n_packets):
        chunk = padded[p * fmt.samples_per_packet : (p + 1) * fmt.samples_per_packet]
        payload = np.concatenate([_int_to_bits(int(c), fmt.adc_bits) for c in chunk])
        body = np.concatenate([ident, payload])
        crc = _int_to_bits(crc8(body), fmt.crc_bits) if fmt.crc_bits else np.zeros(0, np.uint8)
        out.append(np.concatenate([header, sfd, body, crc]))
    return np.concatenate(out) if out else np.zeros(0, dtype=np.uint8)


def depacketize(
    bits: np.ndarray, fmt: "PacketFormat | None" = None
) -> "tuple[np.ndarray, int]":
    """Parse a packet bit stream back into ADC codes.

    Returns ``(codes, n_crc_errors)``; packets failing CRC are dropped.
    Assumes slot-aligned packets (the link model preserves slot timing).
    """
    fmt = fmt if fmt is not None else PacketFormat()
    bits = np.asarray(bits).astype(np.uint8)
    if bits.size % fmt.packet_bits:
        raise ValueError(
            f"bit stream length {bits.size} is not a multiple of the "
            f"packet size {fmt.packet_bits}"
        )
    codes = []
    n_crc_errors = 0
    for p in range(bits.size // fmt.packet_bits):
        pkt = bits[p * fmt.packet_bits : (p + 1) * fmt.packet_bits]
        body = pkt[fmt.header_bits + fmt.sfd_bits : fmt.packet_bits - fmt.crc_bits]
        if fmt.crc_bits:
            rx_crc = 0
            for b in pkt[fmt.packet_bits - fmt.crc_bits :]:
                rx_crc = (rx_crc << 1) | int(b)
            if crc8(body) != rx_crc:
                n_crc_errors += 1
                continue
        payload = body[fmt.id_bits :]
        for s in range(fmt.samples_per_packet):
            code = 0
            for b in payload[s * fmt.adc_bits : (s + 1) * fmt.adc_bits]:
                code = (code << 1) | int(b)
            codes.append(code)
    return np.asarray(codes, dtype=np.int64), n_crc_errors
