"""Packet-based ADC transmission — the paper's "standard system" baseline.

Sec. II: "To transmit the sEMG signal with a wireless transceiver, a
standard system would require an A-to-D converter and communication would
be packet-based.  Typically additional bits, e.g. header, Start-Frame-
Delimiter (SFD), identifier (ID) and Cyclic Redundancy Code (CRC) are
required".

Sec. III-B counts the *payload-only* cost for a 20 s wave at 12-bit/2.5 kHz:
``12 x 50000 = 600000`` symbols; overhead makes the real number larger.
This module implements the full framing (including a real CRC-8) so both
accountings are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

__all__ = [
    "PacketFormat",
    "DepacketizeResult",
    "crc8",
    "packetize",
    "depacketize",
    "payload_symbol_count",
]

_CRC8_POLY = 0x07  # CRC-8/ATM (x^8 + x^2 + x + 1)

_CRC8_TABLES: "dict[int, np.ndarray]" = {}


def _crc8_table(poly: int) -> np.ndarray:
    """The 256-entry byte-update table for ``poly`` (built once, cached)."""
    table = _CRC8_TABLES.get(poly)
    if table is None:
        t = np.arange(256, dtype=np.int64)
        for _ in range(8):
            t = np.where(t & 0x80, (t << 1) ^ poly, t << 1) & 0xFF
        table = t.astype(np.uint8)
        table.setflags(write=False)
        _CRC8_TABLES[poly] = table
    return table


def _crc8_rows(bits: np.ndarray, poly: int, init: int) -> np.ndarray:
    """CRC-8 of every row of a ``(n_rows, n_bits)`` bit matrix.

    Whole bytes go through the precomputed table (``np.packbits`` packs
    eight bit columns per lookup round); a non-byte-aligned tail falls back
    to the bit recurrence, still vectorised across rows.
    """
    n_rows, n_bits = bits.shape
    crc = np.full(n_rows, init, dtype=np.uint8)
    n_bytes, tail = divmod(n_bits, 8)
    if n_bytes:
        table = _crc8_table(poly)
        packed = np.packbits(bits[:, : n_bytes * 8], axis=1)
        for k in range(n_bytes):
            crc = table[crc ^ packed[:, k]]
    if tail:
        acc = crc.astype(np.int64)
        for column in bits[:, n_bytes * 8 :].T:
            acc ^= column.astype(np.int64) << 7
            acc = np.where(acc & 0x80, (acc << 1) ^ poly, acc << 1) & 0xFF
        crc = acc.astype(np.uint8)
    return crc


def crc8(bits: np.ndarray, poly: int = _CRC8_POLY, init: int = 0x00) -> int:
    """CRC-8 over a bit array (MSB-first), table-driven.

    Identical to the bit-serial recurrence (:func:`_crc8_bitwise`) for any
    bit count, polynomial and initial value.
    """
    bits = np.asarray(bits).astype(np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"bits must be 1-D, got shape {bits.shape}")
    return int(_crc8_rows(bits[None, :], poly, init)[0])


def _crc8_bitwise(bits: np.ndarray, poly: int = _CRC8_POLY, init: int = 0x00) -> int:
    """Bit-serial CRC-8 reference the table-driven path is tested against."""
    bits = np.asarray(bits).astype(np.uint8)
    crc = init
    for bit in bits:
        crc ^= int(bit) << 7
        if crc & 0x80:
            crc = ((crc << 1) ^ poly) & 0xFF
        else:
            crc = (crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class PacketFormat:
    """Framing of the packet-based baseline.

    Defaults model a minimal sensor-node link: 8-bit preamble/header,
    8-bit SFD, 8-bit node ID, per-packet CRC-8, and ``samples_per_packet``
    ADC codes of ``adc_bits`` each.
    """

    header_bits: int = 8
    sfd_bits: int = 8
    id_bits: int = 8
    crc_bits: int = 8
    adc_bits: int = 12
    samples_per_packet: int = 8

    def __post_init__(self) -> None:
        for name in ("header_bits", "sfd_bits", "id_bits", "crc_bits", "adc_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.adc_bits < 1:
            raise ValueError(f"adc_bits must be >= 1, got {self.adc_bits}")
        if self.samples_per_packet < 1:
            raise ValueError(
                f"samples_per_packet must be >= 1, got {self.samples_per_packet}"
            )

    @property
    def overhead_bits(self) -> int:
        """Non-payload bits per packet."""
        return self.header_bits + self.sfd_bits + self.id_bits + self.crc_bits

    @property
    def payload_bits(self) -> int:
        """Payload bits per packet."""
        return self.adc_bits * self.samples_per_packet

    @property
    def packet_bits(self) -> int:
        """Total bits per packet."""
        return self.overhead_bits + self.payload_bits

    def n_packets(self, n_samples: int) -> int:
        """Packets needed for ``n_samples`` ADC codes (last one padded)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        return -(-n_samples // self.samples_per_packet)

    def total_bits(self, n_samples: int) -> int:
        """Total transmitted bits including framing overhead."""
        return self.n_packets(n_samples) * self.packet_bits


def payload_symbol_count(n_samples: int, adc_bits: int = 12) -> int:
    """The paper's Sec. III-B accounting: ``adc_bits * n_samples``.

    For the 20 s example wave: ``12 * 50000 = 600000`` symbols.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    if adc_bits < 1:
        raise ValueError(f"adc_bits must be >= 1, got {adc_bits}")
    return adc_bits * n_samples


def _int_to_bits(value: int, width: int) -> np.ndarray:
    shifts = np.arange(width - 1, -1, -1)
    return ((value >> shifts) & 1).astype(np.uint8)


def packetize(codes: np.ndarray, fmt: "PacketFormat | None" = None, node_id: int = 0x5A) -> np.ndarray:
    """Frame ADC codes into the full packet bit stream.

    The stream is the concatenation of packets: header (0xAA), SFD (0x7E),
    node ID, payload codes MSB-first, CRC-8 over ID+payload.  Fully
    vectorised: the whole stream is assembled as one
    ``(n_packets, packet_bits)`` matrix and the per-packet CRCs are
    computed table-driven across all packets at once.
    """
    fmt = fmt if fmt is not None else PacketFormat()
    codes = np.asarray(codes, dtype=np.int64)
    if np.any(codes < 0) or np.any(codes >= (1 << fmt.adc_bits)):
        raise ValueError(f"codes exceed {fmt.adc_bits} bits")
    if not 0 <= node_id < (1 << fmt.id_bits) and fmt.id_bits:
        raise ValueError(f"node_id exceeds {fmt.id_bits} bits")
    n_packets = fmt.n_packets(codes.size)
    if n_packets == 0:
        return np.zeros(0, dtype=np.uint8)
    padded = np.zeros(n_packets * fmt.samples_per_packet, dtype=np.int64)
    padded[: codes.size] = codes

    adc_shifts = np.arange(fmt.adc_bits - 1, -1, -1)
    payload = (
        (padded.reshape(n_packets, fmt.samples_per_packet, 1) >> adc_shifts) & 1
    ).astype(np.uint8).reshape(n_packets, fmt.payload_bits)
    ident = np.broadcast_to(
        _int_to_bits(node_id, fmt.id_bits), (n_packets, fmt.id_bits)
    )
    body = np.concatenate([ident, payload], axis=1)
    header = np.broadcast_to(
        _int_to_bits(0xAA & ((1 << fmt.header_bits) - 1), fmt.header_bits),
        (n_packets, fmt.header_bits),
    )
    sfd = np.broadcast_to(
        _int_to_bits(0x7E & ((1 << fmt.sfd_bits) - 1), fmt.sfd_bits),
        (n_packets, fmt.sfd_bits),
    )
    if fmt.crc_bits:
        crc = _crc8_rows(body, _CRC8_POLY, 0x00).astype(np.int64)
        crc_shifts = np.arange(fmt.crc_bits - 1, -1, -1)
        crc_bits = ((crc[:, None] >> crc_shifts) & 1).astype(np.uint8)
    else:
        crc_bits = np.zeros((n_packets, 0), dtype=np.uint8)
    return np.concatenate([header, sfd, body, crc_bits], axis=1).reshape(-1)


class DepacketizeResult(NamedTuple):
    """Outcome of :func:`depacketize`.

    Attributes
    ----------
    codes:
        ADC codes of every packet that passed CRC, in stream order.
    n_crc_errors:
        Packets dropped for a CRC mismatch.
    n_truncated_bits:
        Trailing bits that did not fill a whole packet and were discarded
        — needed for exact loss accounting on a cut-off stream.
    """

    codes: np.ndarray
    n_crc_errors: int
    n_truncated_bits: int


def depacketize(
    bits: np.ndarray, fmt: "PacketFormat | None" = None
) -> DepacketizeResult:
    """Parse a packet bit stream back into ADC codes.

    Returns :class:`DepacketizeResult`; packets failing CRC are dropped
    and counted, and a trailing partial packet is reported via
    ``n_truncated_bits`` instead of being silently lost.  Assumes
    slot-aligned packets (the link model preserves slot timing).
    Vectorised: one reshape to ``(n_packets, packet_bits)``, table-driven
    CRCs across all packets, and a single shift-dot to rebuild the codes.
    """
    fmt = fmt if fmt is not None else PacketFormat()
    bits = np.asarray(bits).astype(np.uint8)
    n_packets, n_truncated = divmod(bits.size, fmt.packet_bits)
    if n_packets == 0:
        return DepacketizeResult(np.zeros(0, dtype=np.int64), 0, int(n_truncated))
    matrix = bits[: n_packets * fmt.packet_bits].reshape(n_packets, fmt.packet_bits)
    body = matrix[:, fmt.header_bits + fmt.sfd_bits : fmt.packet_bits - fmt.crc_bits]
    if fmt.crc_bits:
        crc_field = matrix[:, fmt.packet_bits - fmt.crc_bits :].astype(np.int64)
        rx_crc = crc_field @ (1 << np.arange(fmt.crc_bits - 1, -1, -1))
        good = _crc8_rows(body, _CRC8_POLY, 0x00).astype(np.int64) == rx_crc
        n_crc_errors = int(np.count_nonzero(~good))
    else:
        good = np.ones(n_packets, dtype=bool)
        n_crc_errors = 0
    payload = body[good][:, fmt.id_bits :].astype(np.int64)
    codes = payload.reshape(-1, fmt.adc_bits) @ (
        1 << np.arange(fmt.adc_bits - 1, -1, -1)
    )
    return DepacketizeResult(
        codes.astype(np.int64), n_crc_errors, int(n_truncated)
    )
