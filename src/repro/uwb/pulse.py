"""IR-UWB pulse shapes and FCC spectral-mask compliance.

IR-UWB radiates nanosecond-scale pulses whose power spectral density must
stay below the FCC Part 15 limit of **-41.3 dBm/MHz** in the 3.1-10.6 GHz
band (paper refs. [4], [5]).  Gaussian-derivative pulses are the standard
family: differentiating shifts the spectral peak upward, and the 5th
derivative with tau ~ 51 ps is the classic fit to the indoor mask.  The
transmitter of ref. [11] (the one the paper's system reuses) spans
0.3-4.4 GHz; its behavioural stand-in here is a low-order derivative with
a larger tau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import eval_hermite

__all__ = [
    "gaussian_derivative",
    "pulse_waveform",
    "pulse_spectrum_dbm_per_mhz",
    "fcc_indoor_mask_dbm_per_mhz",
    "check_fcc_compliance",
    "PulseShape",
]


def gaussian_derivative(t: np.ndarray, tau: float, order: int = 5) -> np.ndarray:
    """The ``order``-th derivative of a Gaussian, peak-normalised.

    Uses the Hermite-polynomial identity
    ``d^n/dt^n exp(-t^2/(2 tau^2)) =
    (-1/(tau*sqrt(2)))^n * H_n(t/(tau*sqrt(2))) * exp(-t^2/(2 tau^2))``
    with the physicists' Hermite polynomials ``H_n``.
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if order < 0:
        raise ValueError(f"order must be non-negative, got {order}")
    t = np.asarray(t, dtype=float)
    u = t / (tau * np.sqrt(2.0))
    w = ((-1.0) ** order) * eval_hermite(order, u) * np.exp(-u * u)
    peak = np.max(np.abs(w))
    if peak > 0:
        w = w / peak
    return w


@dataclass(frozen=True)
class PulseShape:
    """A sampled UWB pulse: waveform plus its timing metadata.

    Attributes
    ----------
    waveform:
        Peak-normalised samples (unit: volts at 1 V peak drive).
    fs_hz:
        Sampling rate of the waveform (tens of GHz).
    tau_s:
        Gaussian time constant.
    order:
        Derivative order.
    """

    waveform: np.ndarray
    fs_hz: float
    tau_s: float
    order: int

    @property
    def duration_s(self) -> float:
        """Span of the sampled waveform."""
        return self.waveform.size / self.fs_hz

    @property
    def energy_norm(self) -> float:
        """Energy of the unit-peak waveform into 1 ohm (V^2 * s)."""
        return float(np.sum(self.waveform ** 2) / self.fs_hz)

    def peak_frequency_hz(self) -> float:
        """Frequency of the spectral peak."""
        spectrum = np.abs(np.fft.rfft(self.waveform))
        freqs = np.fft.rfftfreq(self.waveform.size, d=1.0 / self.fs_hz)
        return float(freqs[int(np.argmax(spectrum))])


def pulse_waveform(
    order: int = 5,
    tau_s: float = 51e-12,
    fs_hz: float = 50e9,
    span_taus: float = 10.0,
) -> PulseShape:
    """Sample a Gaussian-derivative UWB pulse.

    ``span_taus`` controls the window width (in units of tau on each
    side); 10 tau comfortably contains all derivatives up to order 7.
    """
    if fs_hz <= 0:
        raise ValueError(f"fs_hz must be positive, got {fs_hz}")
    half = span_taus * tau_s
    n = max(8, int(round(2 * half * fs_hz)))
    t = (np.arange(n) - n / 2) / fs_hz
    return PulseShape(
        waveform=gaussian_derivative(t, tau_s, order),
        fs_hz=fs_hz,
        tau_s=tau_s,
        order=order,
    )


def pulse_spectrum_dbm_per_mhz(
    shape: PulseShape,
    prf_hz: float,
    peak_amplitude_v: float = 0.5,
    load_ohm: float = 50.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Average PSD of a pulse train in dBm/MHz.

    For pulses of energy spectral density ``|P(f)|^2 / R`` repeated at
    ``prf_hz`` (uncorrelated polarity/payload assumed, so no line
    spectrum), the average PSD is ``prf * |P(f)|^2 / R`` W/Hz.

    Returns ``(freqs_hz, psd_dbm_per_mhz)``.
    """
    if prf_hz <= 0:
        raise ValueError(f"prf_hz must be positive, got {prf_hz}")
    if peak_amplitude_v <= 0:
        raise ValueError(f"peak_amplitude_v must be positive, got {peak_amplitude_v}")
    w = shape.waveform * peak_amplitude_v
    spectrum = np.fft.rfft(w) / shape.fs_hz  # V/Hz (continuous-time FT approx)
    freqs = np.fft.rfftfreq(w.size, d=1.0 / shape.fs_hz)
    esd_w_per_hz = (np.abs(spectrum) ** 2) / load_ohm  # J/Hz
    psd_w_per_hz = esd_w_per_hz * prf_hz
    psd_mw_per_mhz = psd_w_per_hz * 1e3 * 1e6
    with np.errstate(divide="ignore"):
        psd_dbm = 10.0 * np.log10(psd_mw_per_mhz)
    return freqs, psd_dbm


def fcc_indoor_mask_dbm_per_mhz(freqs_hz: np.ndarray) -> np.ndarray:
    """The FCC Part 15 indoor UWB emission mask (dBm/MHz EIRP).

    Piecewise limits from the First Report and Order (2002):
    -41.3 below 960 MHz, -75.3 in 0.96-1.61 GHz, -53.3 in 1.61-1.99 GHz,
    -51.3 in 1.99-3.1 GHz, -41.3 in 3.1-10.6 GHz, -51.3 above.
    """
    f = np.asarray(freqs_hz, dtype=float)
    mask = np.full(f.shape, -41.3)
    mask[(f >= 0.96e9) & (f < 1.61e9)] = -75.3
    mask[(f >= 1.61e9) & (f < 1.99e9)] = -53.3
    mask[(f >= 1.99e9) & (f < 3.1e9)] = -51.3
    mask[(f >= 3.1e9) & (f < 10.6e9)] = -41.3
    mask[f >= 10.6e9] = -51.3
    return mask


def check_fcc_compliance(
    shape: PulseShape,
    prf_hz: float,
    peak_amplitude_v: float = 0.5,
    load_ohm: float = 50.0,
) -> "tuple[bool, float]":
    """Check a pulse train against the FCC indoor mask.

    Returns ``(compliant, worst_margin_db)`` where a positive margin means
    the PSD sits below the mask everywhere.  The aggressive duty cycling
    of event-driven transmission is exactly what keeps the margin
    comfortable at biomedical event rates (a few kHz PRF worst case).
    """
    freqs, psd = pulse_spectrum_dbm_per_mhz(shape, prf_hz, peak_amplitude_v, load_ohm)
    mask = fcc_indoor_mask_dbm_per_mhz(freqs)
    band = freqs > 0
    margin = mask[band] - psd[band]
    worst = float(np.min(margin))
    return worst >= 0.0, worst
