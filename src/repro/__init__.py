"""repro — reproduction of the DATE 2015 D-ATC muscle-force transmission system.

An all-digital spike-based scheme that encodes surface-EMG as asynchronous
threshold-crossing events with a dynamically adapted threshold (D-ATC),
transmitted over a behavioural IR-UWB link and reconstructed at the
receiver.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured results.

Quick start::

    from repro import default_dataset, run_atc, run_datc

    pattern = default_dataset().pattern(0)
    atc = run_atc(pattern)     # fixed 0.3 V threshold (baseline)
    datc = run_datc(pattern)   # dynamic threshold (the paper's scheme)
    print(atc.correlation_pct, datc.correlation_pct)
"""

from .core import (
    ATCConfig,
    ATCEncoder,
    ATCTrace,
    DATCConfig,
    DATCEncoder,
    DATCTrace,
    EventStream,
    MultiChannelDATC,
    PipelineResult,
    StreamingEncoder,
    ThresholdPredictor,
    atc_encode,
    atc_encode_batch,
    datc_encode,
    datc_encode_batch,
    encode_batch,
    merge_streams,
    run_atc,
    run_batch,
    run_datc,
)
from .runtime import AsyncStreamingPipeline, map_jobs
from .rx import StreamingDecoder, reconstruct_batch
from .signals import DatasetSpec, EMGModel, Pattern, default_dataset
from .uwb import LinkConfig, simulate_link, simulate_link_batch

__version__ = "1.0.0"

__all__ = [
    "ATCConfig",
    "ATCEncoder",
    "ATCTrace",
    "DATCConfig",
    "DATCEncoder",
    "DATCTrace",
    "EventStream",
    "MultiChannelDATC",
    "PipelineResult",
    "StreamingEncoder",
    "ThresholdPredictor",
    "atc_encode",
    "atc_encode_batch",
    "datc_encode",
    "datc_encode_batch",
    "encode_batch",
    "merge_streams",
    "run_atc",
    "run_batch",
    "run_datc",
    "AsyncStreamingPipeline",
    "map_jobs",
    "StreamingDecoder",
    "reconstruct_batch",
    "LinkConfig",
    "simulate_link",
    "simulate_link_batch",
    "DatasetSpec",
    "EMGModel",
    "Pattern",
    "default_dataset",
    "__version__",
]
