"""repro — reproduction of the DATE 2015 D-ATC muscle-force transmission system.

An all-digital spike-based scheme that encodes surface-EMG as asynchronous
threshold-crossing events with a dynamically adapted threshold (D-ATC),
transmitted over a behavioural IR-UWB link and reconstructed at the
receiver.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured results.

Quick start::

    from repro import Experiment, ExperimentSpec, default_dataset

    pattern = default_dataset().pattern(0)
    datc = Experiment(ExperimentSpec()).run_one(pattern)   # paper scheme
    atc = Experiment(ExperimentSpec.for_scheme("atc")).run_one(pattern)
    print(atc.correlation_pct, datc.correlation_pct)

Every experiment is one declarative, hashable ``ExperimentSpec`` (see
docs/API.md): serialise it with ``to_dict``/``to_json``, derive sweep
grids with ``replace_at``, and attach a ``ResultStore`` to memoise
repeated sweeps on disk.  ``run_atc``/``run_datc`` remain as one-line
conveniences over the same path.

Execution is pure numpy by default; ``use_backend("compiled")`` (or
``REPRO_KERNEL_BACKEND=compiled``) opts into the numba-jitted kernel
tier for the residual hot loops, falling back to numpy with a single
``KernelFallbackWarning`` when numba is absent.  See docs/KERNELS.md.
"""

from .core import (
    ATCConfig,
    ATCEncoder,
    ATCTrace,
    DATCConfig,
    DATCEncoder,
    DATCTrace,
    EventStream,
    MultiChannelDATC,
    PipelineResult,
    StreamingEncoder,
    ThresholdPredictor,
    atc_encode,
    atc_encode_batch,
    datc_encode,
    datc_encode_batch,
    encode_batch,
    merge_streams,
    run_atc,
    run_batch,
    run_datc,
)
from .kernels import (
    KernelFallbackWarning,
    active_backend,
    available_backends,
    numba_available,
    use_backend,
)
from .runtime import (
    AsyncStreamingPipeline,
    ExperimentQueue,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    QueueBackend,
    RemoteBackend,
    RemoteStore,
    ResultStore,
    ServerBusy,
    ServerReplyError,
    SessionBatch,
    SessionResult,
    SessionServer,
    SessionSpec,
    StreamingClient,
    map_jobs,
    run_sessions,
    run_worker,
)
from .rx import StreamingDecoder, reconstruct_batch
from .signals import DatasetSpec, EMGModel, Pattern, default_dataset
from .uwb import LinkConfig, simulate_link, simulate_link_batch
from .api import (
    DecoderSpec,
    EncoderSpec,
    Experiment,
    ExperimentSpec,
    LinkSpec,
    ScoreSpec,
)

__version__ = "1.1.0"

__all__ = [
    "ATCConfig",
    "ATCEncoder",
    "ATCTrace",
    "DATCConfig",
    "DATCEncoder",
    "DATCTrace",
    "EventStream",
    "MultiChannelDATC",
    "PipelineResult",
    "StreamingEncoder",
    "ThresholdPredictor",
    "atc_encode",
    "atc_encode_batch",
    "datc_encode",
    "datc_encode_batch",
    "encode_batch",
    "merge_streams",
    "run_atc",
    "run_batch",
    "run_datc",
    "KernelFallbackWarning",
    "active_backend",
    "available_backends",
    "numba_available",
    "use_backend",
    "AsyncStreamingPipeline",
    "ExperimentQueue",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "QueueBackend",
    "RemoteBackend",
    "RemoteStore",
    "ResultStore",
    "ServerBusy",
    "ServerReplyError",
    "SessionBatch",
    "SessionResult",
    "SessionServer",
    "SessionSpec",
    "StreamingClient",
    "map_jobs",
    "run_sessions",
    "run_worker",
    "DecoderSpec",
    "EncoderSpec",
    "Experiment",
    "ExperimentSpec",
    "LinkSpec",
    "ScoreSpec",
    "StreamingDecoder",
    "reconstruct_batch",
    "LinkConfig",
    "simulate_link",
    "simulate_link_batch",
    "DatasetSpec",
    "EMGModel",
    "Pattern",
    "default_dataset",
    "__version__",
]
