"""Analog comparator model.

The comparator is the single analog decision element of both ATC and D-ATC:
its output is the 1-bit stream the DTC consumes ("the application of a hard
decision mechanism on an analog signal ... requires careful control of its
features").  The model includes the two non-idealities that matter at the
system level:

* **hysteresis** — a small Schmitt-trigger window that suppresses noise
  chatter around the threshold (and slightly biases the duty cycle);
* **input-referred noise** — Gaussian noise added before the decision.

Metastability of the *sampled* output is modelled separately in
:mod:`repro.digital.synchronizer`, because it is a property of the clocked
``In_reg``, not of the continuous-time comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Comparator", "ideal_compare"]


def ideal_compare(signal: np.ndarray, threshold: "float | np.ndarray") -> np.ndarray:
    """Ideal comparison ``signal > threshold`` as a uint8 {0,1} array."""
    return (np.asarray(signal, dtype=float) > threshold).astype(np.uint8)


@dataclass(frozen=True)
class Comparator:
    """A behavioural continuous-time comparator.

    Attributes
    ----------
    hysteresis_v:
        Full hysteresis window width: the rising decision point is
        ``vth + hysteresis_v / 2`` and the falling one
        ``vth - hysteresis_v / 2``.
    noise_rms_v:
        Input-referred RMS noise (requires ``rng`` in :meth:`compare`).
    """

    hysteresis_v: float = 0.0
    noise_rms_v: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis_v < 0:
            raise ValueError(f"hysteresis_v must be non-negative, got {self.hysteresis_v}")
        if self.noise_rms_v < 0:
            raise ValueError(f"noise_rms_v must be non-negative, got {self.noise_rms_v}")

    def compare(
        self,
        signal: np.ndarray,
        threshold: "float | np.ndarray",
        rng: "np.random.Generator | None" = None,
        initial_state: int = 0,
    ) -> np.ndarray:
        """Compare ``signal`` against ``threshold`` sample by sample.

        ``threshold`` may be a scalar or an array aligned with ``signal``
        (the D-ATC case, where the DAC retargets it each frame).

        Returns a uint8 {0,1} array.
        """
        x = np.asarray(signal, dtype=float)
        if self.noise_rms_v > 0:
            if rng is None:
                raise ValueError("noise_rms_v > 0 requires an rng")
            x = x + self.noise_rms_v * rng.standard_normal(x.shape)

        if self.hysteresis_v == 0.0:
            return ideal_compare(x, threshold)

        th = np.broadcast_to(np.asarray(threshold, dtype=float), x.shape)
        half = self.hysteresis_v / 2.0
        rising = x > (th + half)
        falling = x < (th - half)
        out = np.empty(x.shape, dtype=np.uint8)
        state = 1 if initial_state else 0
        for i in range(x.size):
            if state == 0 and rising[i]:
                state = 1
            elif state == 1 and falling[i]:
                state = 0
            out[i] = state
        return out
