"""Analog front-end behavioural models: amplifier, comparator, DAC, ADC."""

from .adc import ADC
from .amplifier import Amplifier
from .comparator import Comparator, ideal_compare
from .dac import DAC

__all__ = ["ADC", "Amplifier", "Comparator", "ideal_compare", "DAC"]
