"""Analog-to-digital converter model — only used by the *baseline*.

The paper's comparison point (Sec. II and III-B) is a "standard
packet-based system" that digitises each sEMG sample with an A/D converter
(12 bit in the symbol-count example) and transmits the codes in packets.
D-ATC itself needs no ADC — that is the point — but reproducing the
comparison requires one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ADC"]


@dataclass(frozen=True)
class ADC:
    """A uniform mid-rise quantiser with clipping.

    Attributes
    ----------
    n_bits:
        Resolution (12 in the paper's packet-based example).
    vref:
        Full-scale input; inputs are clipped to ``[0, vref]`` (the encoder
        operates on the rectified sEMG) before quantisation.
    """

    n_bits: int = 12
    vref: float = 1.0

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {self.n_bits}")
        if self.vref <= 0:
            raise ValueError(f"vref must be positive, got {self.vref}")

    @property
    def n_levels(self) -> int:
        """Number of output codes."""
        return 1 << self.n_bits

    @property
    def lsb_v(self) -> float:
        """Input step per code."""
        return self.vref / self.n_levels

    def sample(self, signal: np.ndarray) -> np.ndarray:
        """Quantise ``signal`` to integer codes in ``[0, 2**n_bits - 1]``."""
        x = np.clip(np.asarray(signal, dtype=float), 0.0, self.vref)
        codes = np.floor(x / self.lsb_v).astype(np.int64)
        return np.clip(codes, 0, self.n_levels - 1)

    def reconstruct(self, codes: np.ndarray) -> np.ndarray:
        """Mid-rise reconstruction: code -> (code + 0.5) * lsb volts."""
        codes = np.asarray(codes)
        if np.any(codes < 0) or np.any(codes >= self.n_levels):
            raise ValueError(f"code out of range [0, {self.n_levels})")
        return (codes.astype(float) + 0.5) * self.lsb_v
