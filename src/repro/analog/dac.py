"""Digital-to-analog converter model (the threshold trimmer of D-ATC).

Paper Eqn. (3): ``Vth = (Vref * Set_Vth) / 2**Nb`` with ``Vref = 1 V`` and
``Nb = 4`` — a 4-bit DAC giving a 0..0.9375 V threshold range in 62.5 mV
steps ("accurate enough for this application"; the paper examined several
resolutions for the accuracy/complexity trade-off, which our ablation bench
re-runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DAC"]


@dataclass(frozen=True)
class DAC:
    """An ``n_bits`` DAC with optional static non-linearity.

    Attributes
    ----------
    n_bits:
        Resolution; the paper uses 4.
    vref:
        Full-scale reference voltage; the paper uses 1 V.
    inl_lsb:
        Optional per-code integral non-linearity, expressed in LSBs.  When
        given, must have ``2**n_bits`` entries; code ``k`` then produces
        ``(k + inl_lsb[k]) * lsb`` volts.
    """

    n_bits: int = 4
    vref: float = 1.0
    inl_lsb: "tuple[float, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {self.n_bits}")
        if self.vref <= 0:
            raise ValueError(f"vref must be positive, got {self.vref}")
        if self.inl_lsb and len(self.inl_lsb) != self.n_levels:
            raise ValueError(
                f"inl_lsb must have {self.n_levels} entries, got {len(self.inl_lsb)}"
            )

    @property
    def n_levels(self) -> int:
        """Number of distinct output codes (``2**n_bits``)."""
        return 1 << self.n_bits

    @property
    def lsb_v(self) -> float:
        """Voltage step per code: ``vref / 2**n_bits``."""
        return self.vref / self.n_levels

    def to_voltage(self, code: "int | np.ndarray") -> "float | np.ndarray":
        """Paper Eqn. (3): convert a code (or array of codes) to volts."""
        codes = np.asarray(code)
        if np.any(codes < 0) or np.any(codes >= self.n_levels):
            raise ValueError(
                f"code out of range [0, {self.n_levels}): {code!r}"
            )
        if self.inl_lsb:
            inl = np.asarray(self.inl_lsb, dtype=float)[codes]
        else:
            inl = 0.0
        out = (codes + inl) * self.lsb_v
        if np.isscalar(code) or np.ndim(code) == 0:
            return float(out)
        return out

    def nearest_code(self, voltage: float) -> int:
        """The code whose ideal output is closest to ``voltage`` (clipped)."""
        code = int(round(voltage / self.lsb_v))
        return int(np.clip(code, 0, self.n_levels - 1))

    def transfer_curve(self) -> np.ndarray:
        """Output voltage for every code, shape ``(2**n_bits,)``."""
        return np.asarray(
            [self.to_voltage(code) for code in range(self.n_levels)], dtype=float
        )
