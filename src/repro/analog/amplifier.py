"""Pre-amplifier model for the sEMG front-end.

In the ATC system of [10] the preamp gain must be *trimmed per subject* so
that the fixed threshold sits inside the signal dynamic range; the whole
point of D-ATC is to remove that calibration.  The model here exposes the
gain-spread and saturation effects that motivate the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Amplifier"]


@dataclass(frozen=True)
class Amplifier:
    """A behavioural instrumentation-amplifier model.

    Attributes
    ----------
    gain:
        Voltage gain applied to the input signal.  Note that the synthetic
        dataset of :mod:`repro.signals` already expresses signals *after*
        pre-amplification (``EMGModel.gain_v`` is the amplified amplitude),
        so the default here is 1; the explicit model exists for front-end
        studies (gain mistrim, saturation).
    offset_v:
        Output-referred DC offset in volts.
    saturation_v:
        Supply-limited output swing: the output is clipped to
        ``[-saturation_v, +saturation_v]``.
    noise_rms_v:
        Output-referred RMS noise added when a random generator is given.
    """

    gain: float = 1.0
    offset_v: float = 0.0
    saturation_v: float = 1.8
    noise_rms_v: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError(f"gain must be positive, got {self.gain}")
        if self.saturation_v <= 0:
            raise ValueError(f"saturation_v must be positive, got {self.saturation_v}")
        if self.noise_rms_v < 0:
            raise ValueError(f"noise_rms_v must be non-negative, got {self.noise_rms_v}")

    def apply(self, signal: np.ndarray, rng: "np.random.Generator | None" = None) -> np.ndarray:
        """Amplify, offset, add noise, and clip to the output swing."""
        out = self.gain * np.asarray(signal, dtype=float) + self.offset_v
        if self.noise_rms_v > 0:
            if rng is None:
                raise ValueError("noise_rms_v > 0 requires an rng")
            out = out + self.noise_rms_v * rng.standard_normal(out.shape)
        return np.clip(out, -self.saturation_v, self.saturation_v)
