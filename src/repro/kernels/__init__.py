"""Opt-in compiled kernel tier behind the batched engines.

The default execution path everywhere in this library is pure numpy and
bit-exact.  This package adds a second, opt-in tier — numba-jitted fused
kernels for the two residual hot loops (the sequential D-ATC frame scan,
the memory-bound correlation scoring) — behind a tiny backend registry:

    from repro.kernels import use_backend

    use_backend("compiled")              # or REPRO_KERNEL_BACKEND=compiled
    results = experiment.run(patterns)   # same results, faster hot loops

Without numba installed the compiled tier degrades gracefully: dispatch
falls back to numpy with a single warning and results stay byte-identical
to the default path.  See docs/KERNELS.md for the exactness contract
(D-ATC: exact; fused scoring: documented 1e-10 tolerance), and
``python -m repro bench --kernels`` to race the tiers on your machine.

Only :mod:`~repro.kernels.dispatch` is imported eagerly; the jitted
modules load on first compiled dispatch so numba's import/JIT cost never
touches the default path.
"""

from .dispatch import (
    BACKENDS,
    KernelFallbackWarning,
    active_backend,
    available_backends,
    get_kernel,
    numba_available,
    register_kernel,
    requested_backend,
    use_backend,
)

__all__ = [
    "BACKENDS",
    "KernelFallbackWarning",
    "active_backend",
    "available_backends",
    "get_kernel",
    "numba_available",
    "register_kernel",
    "requested_backend",
    "use_backend",
]
