"""Compiled D-ATC frame scan: the whole Fig. 1 loop in one fused pass.

The numpy batch path (:func:`repro.core.encoders._datc_frames_numpy`) is
frame-vectorised: a Python loop of ``n_frames`` iterations, each doing a
handful of whole-batch numpy ops and allocating per-frame temporaries.
For long multi-frame signals that loop *is* the encoder's remaining cost.
This kernel fuses the per-frame compare / DTC ones count / predictor
update sequence into a single traversal of the ``(n_signals, n_clocks)``
clocked matrix: no per-frame temporaries, no interpreter in the loop.

**Exactness.**  The kernel is gated by *exact equality* against the
numpy `_BatchPredictor` path (asserted in ``tests/kernels`` and
``benchmarks/test_bench_kernel_throughput.py``):

* the quantized (RTL) predictor flavour is integer arithmetic — trivially
  exact;
* the float flavour replicates the IEEE op order of the reference:
  ``((w3*n3 + w2*n2) + w1*n1) / divisor`` for Eqn. (1) and
  ``vref * level / 2**Nb`` for Eqn. (3), every operand promoted exactly
  as numpy promotes it (small integer counts convert to float64 without
  rounding);
* Listing 1's priority encoder is an ascending-ladder scan identical to
  ``searchsorted(..., side="right") - 1`` including duplicate ladder
  entries (rounded quantized ladders can repeat values).

The kernel body is a plain Python function jitted at import when numba
is present; without numba the module still imports and the body remains
callable (pure Python) so the test-suite exercises its semantics on any
environment — dispatch never routes to it un-jitted.
"""

from __future__ import annotations

import numpy as np

from ..core.config import DATCConfig
from ..core.predictor import ThresholdPredictor
from .dispatch import register_kernel

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_COMPILED = True
except ImportError:  # pragma: no cover - the container default
    njit = None
    NUMBA_COMPILED = False

__all__ = ["datc_frames", "NUMBA_COMPILED"]


def _datc_scan_py(
    x_clk,
    frame_size,
    vref,
    n_codes,
    ladder,
    min_level,
    initial_level,
    w1,
    w2,
    w3,
    divisor,
    fw1,
    fw2,
    fw3,
    shift,
    quantized,
    d_in,
    levels,
    vth,
    frame_levels,
    frame_ones,
    frame_avr,
):
    """One pass over ``(n_signals, n_clocks)``: compare, count, predict.

    Written in the numba-compilable subset (scalar loops, preallocated
    outputs); see the module docstring for the exactness contract.
    """
    n_signals, n_clocks = x_clk.shape
    n_ladder = ladder.shape[0]
    for r in range(n_signals):
        n_one1 = 0
        n_one2 = 0
        level = initial_level
        frame = 0
        k0 = 0
        while k0 < n_clocks:
            k1 = k0 + frame_size
            if k1 > n_clocks:
                k1 = n_clocks
            v = vref * level / n_codes  # Eqn. (3), reference op order
            ones = 0
            for k in range(k0, k1):
                bit = 1 if x_clk[r, k] > v else 0
                d_in[r, k] = bit
                levels[r, k] = level
                vth[r, k] = v
                ones += bit
            if k1 - k0 == frame_size:  # only completed frames update the DTC
                if quantized:
                    acc = fw3 * ones + fw2 * n_one2 + fw1 * n_one1
                    avr = float(acc >> shift)
                else:
                    avr = (w3 * ones + w2 * n_one2 + w1 * n_one1) / divisor
                # searchsorted(ladder, avr, side="right") - 1 on the
                # ascending ladder (duplicates included: the scan keeps
                # advancing while entries stay <= avr).
                idx = -1
                for t in range(n_ladder):
                    if ladder[t] <= avr:
                        idx = t
                    else:
                        break
                level = idx if idx > min_level else min_level
                frame_avr[r, frame] = avr
                frame_ones[r, frame] = ones
                frame_levels[r, frame] = level
                n_one1 = n_one2
                n_one2 = ones
                frame += 1
            k0 = k1


_datc_scan = (
    njit(cache=True, nogil=True)(_datc_scan_py) if NUMBA_COMPILED else _datc_scan_py
)


@register_kernel("datc_frames", "compiled")
def datc_frames(x_clk: np.ndarray, config: DATCConfig):
    """Compiled flavour of the D-ATC frame scan (same contract as numpy).

    Takes the clock-resampled ``(n_signals, n_clocks)`` matrix and the
    operating point; returns ``(d_in, levels, vth, frame_levels,
    frame_ones, frame_avr)`` with the exact dtypes and values of
    :func:`repro.core.encoders._datc_frames_numpy`.
    """
    x_clk = np.ascontiguousarray(x_clk, dtype=float)
    n_signals, n_clocks = x_clk.shape
    frame_size = config.frame_size
    n_frames = n_clocks // frame_size  # completed frames only

    d_in = np.empty((n_signals, n_clocks), dtype=np.uint8)
    levels = np.empty((n_signals, n_clocks), dtype=np.int64)
    vth = np.empty((n_signals, n_clocks), dtype=float)
    frame_levels = np.zeros((n_signals, n_frames), dtype=np.int64)
    frame_ones = np.zeros((n_signals, n_frames), dtype=np.int64)
    frame_avr = np.zeros((n_signals, n_frames), dtype=float)

    # Same ladder the batch predictor selects from; small-integer
    # (quantized) ladders convert to float64 exactly.
    ladder = np.asarray(
        ThresholdPredictor(config).interval_ladder, dtype=float
    )
    if config.quantized:
        fixed = config.fixed_weights()
        fw1, fw2, fw3, shift = fixed.w1, fixed.w2, fixed.w3, fixed.shift
    else:
        fw1 = fw2 = fw3 = shift = 0
    w1, w2, w3 = config.weights

    _datc_scan(
        x_clk,
        frame_size,
        float(config.vref),
        float(1 << config.dac_bits),
        ladder,
        int(config.min_level),
        int(config.initial_level),
        float(w1),
        float(w2),
        float(w3),
        float(config.weight_divisor),
        int(fw1),
        int(fw2),
        int(fw3),
        int(shift),
        bool(config.quantized),
        d_in,
        levels,
        vth,
        frame_levels,
        frame_ones,
        frame_avr,
    )
    return d_in, levels, vth, frame_levels, frame_ones, frame_avr
