"""Compiled multi-session frame advance for :class:`SessionBatch`.

The numpy flavour of the ``"session_frames"`` op
(:func:`repro.runtime.sessions._session_frames_numpy`) is
frame-vectorised: a Python loop over the deepest pushed session's frame
count, each iteration a handful of whole-batch numpy ops.  When many
sessions complete frames in the same push (the steady state of a large
``SessionBatch``), this kernel fuses the compare / rising-edge / DTC
ones-count / predictor-update sequence into one traversal of the packed
frame matrix — no per-frame temporaries, no interpreter in the loop, and
the event list comes out already row-major.

**Exactness.**  Gated by *exact equality* against the numpy flavour
(asserted in ``tests/kernels/test_session_kernels.py``): the float
predictor replicates the reference IEEE op order
``((w3*n3 + w2*n2) + w1*n1) / divisor`` and ``vref * level / 2**Nb``;
the quantized flavour is integer arithmetic; the ladder select is the
same ascending scan as ``searchsorted(..., side="right") - 1`` with
duplicate entries handled identically (see :mod:`repro.kernels.datc`,
whose contract this kernel inherits).

The scan body is a plain Python function jitted at import when numba is
present; without numba the module still imports and the body stays
callable so the suite can exercise its semantics anywhere — dispatch
never routes to it un-jitted.
"""

from __future__ import annotations

import numpy as np

from ..core.config import DATCConfig
from ..core.predictor import ThresholdPredictor
from .dispatch import register_kernel

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_COMPILED = True
except ImportError:  # pragma: no cover - the container default
    njit = None
    NUMBA_COMPILED = False

__all__ = ["session_frames", "NUMBA_COMPILED"]


def _session_scan_py(
    P,
    navail,
    emitted,
    last_bit,
    n_one1,
    n_one2,
    level,
    frame_size,
    vref,
    n_codes,
    ladder,
    min_level,
    w1,
    w2,
    w3,
    divisor,
    fw1,
    fw2,
    fw3,
    shift,
    quantized,
    ev_row,
    ev_clk,
    ev_lvl,
):
    """Scan each pushed session's completed frames; emit rising edges.

    Register arrays (``last_bit`` .. ``level``) are updated in place;
    events land row-major in the preallocated ``ev_*`` arrays and the
    count is returned.  Written in the numba-compilable subset.
    """
    k = P.shape[0]
    n_ladder = ladder.shape[0]
    n_ev = 0
    for r in range(k):
        n_frames = navail[r] // frame_size
        lb = last_bit[r]
        n1 = n_one1[r]
        n2 = n_one2[r]
        lv = level[r]
        base = emitted[r]
        for f in range(n_frames):
            v = vref * lv / n_codes  # Eqn. (3), reference op order
            ones = 0
            k0 = f * frame_size
            for p in range(frame_size):
                bit = 1 if P[r, k0 + p] > v else 0
                if bit == 1:
                    ones += 1
                    if lb == 0:  # rising edge -> one event at this clock
                        ev_row[n_ev] = r
                        ev_clk[n_ev] = base + k0 + p
                        ev_lvl[n_ev] = lv
                        n_ev += 1
                lb = bit
            if quantized:
                acc = fw3 * ones + fw2 * n2 + fw1 * n1
                avr = float(acc >> shift)
            else:
                avr = (w3 * ones + w2 * n2 + w1 * n1) / divisor
            # searchsorted(ladder, avr, side="right") - 1, duplicates
            # included (the scan keeps advancing while entries <= avr).
            idx = -1
            for t in range(n_ladder):
                if ladder[t] <= avr:
                    idx = t
                else:
                    break
            lv = idx if idx > min_level else min_level
            n1 = n2
            n2 = ones
        last_bit[r] = lb
        n_one1[r] = n1
        n_one2[r] = n2
        level[r] = lv
    return n_ev


_session_scan = (
    njit(cache=True, nogil=True)(_session_scan_py)
    if NUMBA_COMPILED
    else _session_scan_py
)


@register_kernel("session_frames", "compiled")
def session_frames(
    P: np.ndarray,
    navail: np.ndarray,
    emitted: np.ndarray,
    last_bit: np.ndarray,
    n_one1: np.ndarray,
    n_one2: np.ndarray,
    level: np.ndarray,
    config: DATCConfig,
):
    """Compiled flavour of ``"session_frames"`` (same contract as numpy).

    Same in-place register updates and row-major ``(ev_row, ev_clk,
    ev_lvl)`` return as
    :func:`repro.runtime.sessions._session_frames_numpy`, bit-exact.
    """
    P = np.ascontiguousarray(P, dtype=float)
    frame_size = config.frame_size
    navail = np.ascontiguousarray(navail, dtype=np.int64)
    # At most one event per scanned clock of a completed frame.
    cap = int(np.sum((navail // frame_size) * frame_size))
    ev_row = np.empty(cap, dtype=np.int64)
    ev_clk = np.empty(cap, dtype=np.int64)
    ev_lvl = np.empty(cap, dtype=np.int64)

    ladder = np.asarray(ThresholdPredictor(config).interval_ladder, dtype=float)
    if config.quantized:
        fixed = config.fixed_weights()
        fw1, fw2, fw3, shift = fixed.w1, fixed.w2, fixed.w3, fixed.shift
    else:
        fw1 = fw2 = fw3 = shift = 0
    w1, w2, w3 = config.weights

    n_ev = _session_scan(
        P,
        navail,
        np.ascontiguousarray(emitted, dtype=np.int64),
        last_bit,
        n_one1,
        n_one2,
        level,
        frame_size,
        float(config.vref),
        float(1 << config.dac_bits),
        ladder,
        int(config.min_level),
        float(w1),
        float(w2),
        float(w3),
        float(config.weight_divisor),
        int(fw1),
        int(fw2),
        int(fw3),
        int(shift),
        bool(config.quantized),
        ev_row,
        ev_clk,
        ev_lvl,
    )
    return ev_row[:n_ev].copy(), ev_clk[:n_ev].copy(), ev_lvl[:n_ev].copy()
