"""Fused correlation scoring: resample + centered products in one sweep.

The numpy scoring path walks the full ``(n_rows, ~50k)`` reference grid
roughly six times (gather lo/hi, slope arithmetic, demean both matrices,
three reductions), materialising a full-size temporary on most of them —
on that grid the op is memory-bound, so the passes are the cost.  This
kernel keeps one row resident: it interpolates the reconstruction onto
the reference grid and accumulates both running sums in the same
traversal, then forms the three centered products in a second cache-hot
sweep of the per-row scratch.

**Tolerance (documented).**  The interpolated *values* are bit-identical
to :func:`repro.rx.correlation.resample_rows_to_length` (the interval
index, the interpolation weights and the ``slope * du + lo`` op order are
shared with the numpy path), but the reductions accumulate sequentially
where numpy sums pairwise, so the final correlation differs in the last
bits.  The guarantee, asserted by the property suite and the kernel
bench, is

    ``|fused - numpy| <= 1e-10 * 100``  (rtol 1e-10 of the ±100 % scale,
    i.e. at most 1e-8 percentage points)

which is ~4 orders of magnitude below the reconstruction's own
quantisation noise.  Exact-science callers should stay on the numpy
backend; see docs/KERNELS.md.

Like ``repro.kernels.datc``, the kernel body is jitted at import when
numba is present and remains a callable pure-Python reference otherwise
(dispatch never routes to it un-jitted).
"""

from __future__ import annotations

import math

import numpy as np

from .dispatch import register_kernel

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_COMPILED = True
except ImportError:  # pragma: no cover - the container default
    njit = None
    NUMBA_COMPILED = False

__all__ = ["fused_aligned_correlation", "TOLERANCE_PCT", "NUMBA_COMPILED"]

# The documented bound on |fused - numpy| in percentage points
# (rtol 1e-10 on the ±100 % full scale).
TOLERANCE_PCT = 100.0 * 1e-10

# Row layouts the scan distinguishes (how recon maps onto the ref grid).
_MODE_INTERP = 0  # general linear interpolation
_MODE_COPY = 1  # m == n_ref: the resample is the identity
_MODE_CONST = 2  # m == 1: every grid point takes the single value


def _corr_scan_py(x, refs, mode, j, ds, du, last, out):
    """Per row: interpolate onto the reference grid, correlate, scale.

    ``j``/``ds``/``du``/``last`` are the shared source-interval indices
    and interpolation weights (precomputed once in numpy — identical to
    the reference resampler's); ``last`` marks grid points at or past the
    source's right endpoint, which take the endpoint value exactly as
    ``np.interp`` does.
    """
    n_rows = x.shape[0]
    m = x.shape[1]
    n_ref = refs.shape[1]
    scratch = np.empty(n_ref)
    for r in range(n_rows):
        sum_a = 0.0
        sum_b = 0.0
        for i in range(n_ref):
            if mode == _MODE_COPY:
                v = x[r, i]
            elif mode == _MODE_CONST:
                v = x[r, 0]
            elif last[i]:
                v = x[r, m - 1]
            else:
                lo = x[r, j[i]]
                hi = x[r, j[i] + 1]
                v = (hi - lo) / ds[i] * du[i] + lo
            scratch[i] = v
            sum_a += v
            sum_b += refs[r, i]
        mean_a = sum_a / n_ref
        mean_b = sum_b / n_ref
        saa = 0.0
        sbb = 0.0
        sab = 0.0
        for i in range(n_ref):
            da = scratch[i] - mean_a
            db = refs[r, i] - mean_b
            saa += da * da
            sbb += db * db
            sab += da * db
        denom = math.sqrt(saa * sbb)
        if denom == 0.0:
            out[r] = 0.0
        else:
            c = sab / denom
            if c > 1.0:
                c = 1.0
            elif c < -1.0:
                c = -1.0
            out[r] = 100.0 * c


_corr_scan = (
    njit(cache=True, nogil=True)(_corr_scan_py) if NUMBA_COMPILED else _corr_scan_py
)


@register_kernel("aligned_correlation", "compiled")
def fused_aligned_correlation(
    recons: np.ndarray, references: np.ndarray
) -> np.ndarray:
    """Compiled flavour of ``aligned_correlation_percent_batch``.

    Inputs are pre-validated 2-D float64 matrices (the public dispatcher
    owns validation so both backends reject bad input identically).
    Returns one correlation %% per row within :data:`TOLERANCE_PCT` of
    the numpy path.
    """
    recons = np.ascontiguousarray(recons, dtype=float)
    references = np.ascontiguousarray(references, dtype=float)
    n_rows, m = recons.shape
    n_ref = references.shape[1]

    if m == n_ref:
        mode = _MODE_COPY
    elif m == 1:
        mode = _MODE_CONST
    else:
        mode = _MODE_INTERP

    if mode == _MODE_INTERP:
        # The reference resampler's interval lookup, verbatim: shared
        # across rows, so computed once here rather than inside the scan.
        src = np.linspace(0.0, 1.0, m)
        dst = np.linspace(0.0, 1.0, n_ref)
        j = np.clip(np.searchsorted(src, dst, side="right") - 1, 0, m - 2)
        ds = src[j + 1] - src[j]
        du = dst - src[j]
        last = dst >= src[-1]
    else:
        j = np.zeros(0, dtype=np.int64)
        ds = np.zeros(0)
        du = np.zeros(0)
        last = np.zeros(0, dtype=np.bool_)

    out = np.empty(n_rows)
    _corr_scan(recons, references, mode, np.asarray(j, dtype=np.int64), ds, du, last, out)
    return out
