"""Kernel backend registry: numpy reference paths vs compiled (numba) tier.

Every residual hot loop of the batched pipeline (the sequential D-ATC
frame scan, the memory-bound correlation scoring) exists in two
implementations:

``numpy``
    The pure-numpy reference path.  Always available, always the default,
    and the definition of correctness — every other backend is gated
    against it (bit-exactly where the op allows it, within a documented
    tolerance otherwise; see docs/KERNELS.md).
``compiled``
    Numba-jitted fused kernels (``repro.kernels.datc`` /
    ``repro.kernels.correlation``).  Opt-in: ``use_backend("compiled")``
    or ``REPRO_KERNEL_BACKEND=compiled``.  When numba is not installed
    the dispatcher falls back to ``numpy`` and warns **once** per
    process — nothing else changes, results are byte-identical to the
    default path.

The backend is an *execution detail*: it is not part of
:class:`~repro.api.ExperimentSpec`, so ``spec.key()`` and
:class:`~repro.runtime.store.ResultStore` addresses are identical under
either backend (asserted in ``tests/kernels``).

Usage::

    from repro.kernels import use_backend

    use_backend("compiled")          # process-wide
    with use_backend("compiled"):    # scoped; restores the previous one
        experiment.run(patterns)
"""

from __future__ import annotations

import importlib
import os
import warnings

__all__ = [
    "BACKENDS",
    "KernelFallbackWarning",
    "active_backend",
    "available_backends",
    "get_kernel",
    "numba_available",
    "register_kernel",
    "requested_backend",
    "use_backend",
]

BACKENDS = ("numpy", "compiled")
ENV_VAR = "REPRO_KERNEL_BACKEND"

# Compiled implementations are imported lazily, first time the compiled
# backend actually dispatches that op — importing (and jitting) numba
# kernels must cost nothing on the default path.
_COMPILED_MODULES = {
    "datc_frames": "repro.kernels.datc",
    "aligned_correlation": "repro.kernels.correlation",
    "session_frames": "repro.kernels.sessions",
}

_registry: "dict[str, dict[str, object]]" = {}
_requested: "str | None" = None  # resolved lazily from ENV_VAR
_numba_ok: "bool | None" = None
_warned_fallback = False


class KernelFallbackWarning(RuntimeWarning):
    """Emitted once when the compiled backend is requested without numba."""


def numba_available() -> bool:
    """True when numba can be imported (cached after the first check)."""
    global _numba_ok
    if _numba_ok is None:
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except Exception:
            _numba_ok = False
    return _numba_ok


def available_backends() -> "tuple[str, ...]":
    """The backends that would actually execute on this machine."""
    return BACKENDS if numba_available() else ("numpy",)


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}"
        )
    return name


def requested_backend() -> str:
    """The backend the process asked for (env var or :func:`use_backend`)."""
    global _requested
    if _requested is None:
        _requested = _validate(os.environ.get(ENV_VAR, "numpy"))
    return _requested


def _warn_fallback_once() -> None:
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            "kernel backend 'compiled' requested but numba is not "
            "installed; falling back to the pure-numpy kernels "
            "(pip install repro[compiled] to enable the compiled tier)",
            KernelFallbackWarning,
            stacklevel=3,
        )


def active_backend() -> str:
    """The backend dispatch will actually use (fallback applied)."""
    name = requested_backend()
    if name == "compiled" and not numba_available():
        _warn_fallback_once()
        return "numpy"
    return name


class _BackendContext:
    """Restores the previously requested backend on ``__exit__``.

    Returned by :func:`use_backend` so the call works both as a plain
    process-wide setter and as a ``with`` block.
    """

    def __init__(self, previous: str) -> None:
        self._previous = previous

    def __enter__(self) -> str:
        return requested_backend()

    def __exit__(self, *exc) -> bool:
        global _requested
        _requested = self._previous
        return False


def use_backend(name: str) -> _BackendContext:
    """Select the kernel backend (``"numpy"`` or ``"compiled"``).

    Takes effect immediately and process-wide; the returned object is a
    context manager that restores the previous selection, so scoped use
    is ``with use_backend("compiled"): ...``.  Requesting ``"compiled"``
    without numba installed warns once and runs on numpy.
    """
    global _requested
    _validate(name)
    previous = requested_backend()
    _requested = name
    if name == "compiled" and not numba_available():
        _warn_fallback_once()
    return _BackendContext(previous)


def register_kernel(op: str, backend: str):
    """Decorator: register ``fn`` as the ``backend`` implementation of ``op``."""
    _validate(backend)

    def decorate(fn):
        _registry.setdefault(op, {})[backend] = fn
        return fn

    return decorate


def get_kernel(op: str):
    """The ``op`` implementation for the active backend.

    The compiled implementation is imported on first use; an op with no
    compiled flavour silently serves its numpy one (the registry is a
    per-op opt-in, not an all-or-nothing switch).
    """
    backend = active_backend()
    if backend == "compiled":
        impl = _registry.get(op, {}).get("compiled")
        if impl is None and op in _COMPILED_MODULES:
            importlib.import_module(_COMPILED_MODULES[op])
            impl = _registry.get(op, {}).get("compiled")
        if impl is not None:
            return impl
    impl = _registry.get(op, {}).get("numpy")
    if impl is None:
        raise KeyError(f"no kernel registered for op {op!r}")
    return impl


def _reset_for_tests() -> None:
    """Forget the requested backend and the one-time warning (tests only)."""
    global _requested, _warned_fallback
    _requested = None
    _warned_fallback = False
