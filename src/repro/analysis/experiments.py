"""Experiment drivers — one per table/figure of the paper's evaluation.

Each ``run_*`` function regenerates the data behind a figure or table and
returns a structured result with a ``format_table()`` method printing the
same rows/series the paper reports, alongside the paper's published
numbers.  Absolute values come from our synthetic dataset (see DESIGN.md);
the *shape* — who wins, by roughly what factor, where crossovers fall — is
the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import (
    DatasetSweepResult,
    Experiment,
    ExperimentSpec,
    SweepPoint,
)
from ..core.config import ATCConfig, DATCConfig
from ..core.datc import datc_encode
from ..core.pipeline import PipelineResult, run_atc, run_datc
from ..hardware.report import PAPER_TABLE1, TableOne, generate_table1
from ..runtime.store import ResultStore
from ..signals.dataset import DatasetSpec, Pattern, default_dataset
from ..signals.emg import EMGModel, synthesize_emg
from ..signals.force import concatenate_profiles, constant_profile
from ..uwb.packets import payload_symbol_count
from .metrics import Summary, summarize

__all__ = [
    "FIG3_PATTERN_ID",
    "PAPER_FIG3",
    "PAPER_FIG5",
    "PAPER_FIG6",
    "PAPER_SYMBOLS",
    "Fig2Result",
    "Fig3Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "SymbolComparison",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_symbol_comparison",
    "run_table1",
]

# The representative pattern playing the role of the paper's Fig. 3/6
# recording (a mid-amplitude subject for which a 0.3 V threshold is
# workable but suboptimal).  Chosen once; see EXPERIMENTS.md.
FIG3_PATTERN_ID = 22

# Published reference numbers (events / correlations of Sec. III-B).
PAPER_FIG3 = {
    "atc_vth_v": 0.3,
    "atc_events": 3183,
    "datc_events": 3724,
    "datc_corr_pct": 96.41,
    "datc_vs_atc_event_ratio": 1.17,  # "almost 17% more than constant ATC"
    "datc_corr_advantage_pct": 5.0,  # "almost 5% higher w.r.t. constant"
}
PAPER_FIG5 = {
    "atc_corr_range_pct": (47.0, 95.2),
    "datc_corr_range_pct": (85.0, 98.0),
}
PAPER_FIG6 = {
    "atc_vth_v": 0.2,
    "atc_events": 5821,
    "atc_vs_datc_event_ratio": 1.56,  # "almost 56% more than D-ATC"
}
PAPER_SYMBOLS = {
    "packet_based": 600_000,  # 12 bit x 50000 samples
    "atc_0v3": 3183,
    "atc_0v2": 5821,
    "datc": 18_620,  # 3724 x 5
}


# ----------------------------------------------------------------------
# Fig. 2 — conceptual comparison on a framed snippet
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventCounts:
    """Per-frame and total event counts of one encoder run."""

    per_frame: np.ndarray

    @property
    def total(self) -> int:
        """Total events."""
        return int(self.per_frame.sum())


@dataclass(frozen=True)
class Fig2Result:
    """Event rasters for two fixed thresholds and the dynamic one.

    Mirrors Fig. 2(A)-(E): a staircase-amplitude sEMG snippet, events for
    a high and a low constant threshold, events for D-ATC, and the D-ATC
    packet contents (event + 4-bit level).
    """

    fs: float
    emg: np.ndarray
    frame_duration_s: float
    atc_high: EventCounts
    atc_low: EventCounts
    datc: EventCounts
    datc_levels: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def format_table(self) -> str:
        """Events per frame for each thresholding flavour."""
        lines = [
            "Fig. 2 — events per frame (constant high / constant low / dynamic)",
            f"{'frame':>6} {'ATC high':>10} {'ATC low':>10} {'D-ATC':>10} {'level':>6}",
        ]
        n = self.datc.per_frame.size
        for f in range(n):
            level = self.datc_levels[f] if f < self.datc_levels.size else -1
            lines.append(
                f"{f:>6d} {self.atc_high.per_frame[f]:>10d} "
                f"{self.atc_low.per_frame[f]:>10d} {self.datc.per_frame[f]:>10d} "
                f"{level:>6d}"
            )
        lines.append(
            f"{'total':>6} {self.atc_high.total:>10d} {self.atc_low.total:>10d} "
            f"{self.datc.total:>10d}"
        )
        return "\n".join(lines)


def run_fig2(
    seed: int = 42,
    vth_high: float = 0.45,
    vth_low: float = 0.12,
    n_frames: int = 10,
) -> Fig2Result:
    """Regenerate the Fig. 2 concept demo.

    A staircase-amplitude synthetic sEMG (quiet, weak, strong segments) is
    encoded with two constant thresholds and with D-ATC; the constant-high
    threshold misses the weak segment, the constant-low one fires
    excessively on the strong segment, and D-ATC stays balanced.
    """
    config = DATCConfig()
    fs = 2500.0
    frame_s = config.frame_duration_s
    segment = n_frames // 3 if n_frames >= 3 else 1
    rng = np.random.default_rng(seed)
    force = concatenate_profiles(
        constant_profile(segment * frame_s, fs, 0.05),
        constant_profile(segment * frame_s, fs, 0.25),
        constant_profile((n_frames - 2 * segment) * frame_s, fs, 0.8),
    )
    emg = synthesize_emg(force, fs, EMGModel(gain_v=0.6), rng)

    def per_frame_counts(times: np.ndarray) -> np.ndarray:
        edges = np.arange(n_frames + 1) * frame_s
        counts, _ = np.histogram(times, bins=edges)
        return counts

    from ..core.atc import atc_encode  # local import keeps module header lean

    atc_high_stream, _ = atc_encode(emg, fs, ATCConfig(vth=vth_high))
    atc_low_stream, _ = atc_encode(emg, fs, ATCConfig(vth=vth_low))
    datc_stream, trace = datc_encode(emg, fs, config)

    return Fig2Result(
        fs=fs,
        emg=emg,
        frame_duration_s=frame_s,
        atc_high=EventCounts(per_frame_counts(atc_high_stream.times)),
        atc_low=EventCounts(per_frame_counts(atc_low_stream.times)),
        datc=EventCounts(per_frame_counts(datc_stream.times)),
        datc_levels=trace.frame_levels,
    )


# ----------------------------------------------------------------------
# Fig. 3 — constant 0.3 V vs dynamic on one full pattern
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """The single-pattern head-to-head of Fig. 3."""

    pattern_id: int
    atc: PipelineResult
    datc: PipelineResult

    @property
    def event_ratio(self) -> float:
        """D-ATC events / ATC events (paper: ~1.17)."""
        return self.datc.n_events / self.atc.n_events if self.atc.n_events else float("inf")

    @property
    def correlation_advantage_pct(self) -> float:
        """D-ATC correlation minus ATC correlation (paper: ~5)."""
        return self.datc.correlation_pct - self.atc.correlation_pct

    def format_table(self) -> str:
        """Paper-vs-measured rows for Fig. 3."""
        rows = [
            ("ATC (0.3 V) events", f"{PAPER_FIG3['atc_events']}", f"{self.atc.n_events}"),
            ("D-ATC events", f"{PAPER_FIG3['datc_events']}", f"{self.datc.n_events}"),
            ("event ratio D-ATC/ATC", f"{PAPER_FIG3['datc_vs_atc_event_ratio']:.2f}",
             f"{self.event_ratio:.2f}"),
            ("ATC correlation %", "~91.4", f"{self.atc.correlation_pct:.2f}"),
            ("D-ATC correlation %", f"{PAPER_FIG3['datc_corr_pct']:.2f}",
             f"{self.datc.correlation_pct:.2f}"),
            ("correlation advantage %", f"~{PAPER_FIG3['datc_corr_advantage_pct']:.0f}",
             f"{self.correlation_advantage_pct:.2f}"),
        ]
        header = f"{'Fig. 3 quantity':<26}{'paper':>12}{'measured':>12}"
        lines = [header, "-" * len(header)]
        lines += [f"{q:<26}{p:>12}{m:>12}" for q, p, m in rows]
        return "\n".join(lines)


def run_fig3(
    pattern_id: int = FIG3_PATTERN_ID,
    vth: float = 0.3,
    dataset: "DatasetSpec | None" = None,
) -> Fig3Result:
    """Regenerate Fig. 3 on the representative pattern."""
    dataset = dataset if dataset is not None else default_dataset()
    pattern = dataset.pattern(pattern_id)
    return Fig3Result(
        pattern_id=pattern_id,
        atc=run_atc(pattern, ATCConfig(vth=vth)),
        datc=run_datc(pattern),
    )


# ----------------------------------------------------------------------
# Fig. 5 — correlations across the 190-pattern dataset
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    """Dataset-wide correlation comparison (Fig. 5)."""

    atc: DatasetSweepResult
    datc: DatasetSweepResult

    @property
    def atc_summary(self) -> Summary:
        """ATC correlation summary."""
        return summarize(self.atc.correlations_pct)

    @property
    def datc_summary(self) -> Summary:
        """D-ATC correlation summary."""
        return summarize(self.datc.correlations_pct)

    def format_table(self) -> str:
        """Ranges and stability, paper vs measured."""
        a, d = self.atc_summary, self.datc_summary
        pa = PAPER_FIG5["atc_corr_range_pct"]
        pd_ = PAPER_FIG5["datc_corr_range_pct"]
        lines = [
            f"Fig. 5 — correlation over {a.n} patterns",
            f"{'scheme':<10}{'paper range':>18}{'measured range':>20}{'mean':>8}",
            f"{'ATC 0.3V':<10}{f'{pa[0]:.0f}-{pa[1]:.1f}%':>18}"
            f"{f'{a.minimum:.1f}-{a.maximum:.1f}%':>20}{a.mean:>7.1f}%",
            f"{'D-ATC':<10}{f'{pd_[0]:.0f}-{pd_[1]:.0f}%':>18}"
            f"{f'{d.minimum:.1f}-{d.maximum:.1f}%':>20}{d.mean:>7.1f}%",
            f"event-count spread (std/mean): ATC {self.atc.event_spread:.2f}, "
            f"D-ATC {self.datc.event_spread:.2f}",
        ]
        return "\n".join(lines)


def run_fig5(
    n_patterns: "int | None" = None,
    vth: float = 0.3,
    dataset: "DatasetSpec | None" = None,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    store: "ResultStore | None" = None,
) -> Fig5Result:
    """Regenerate Fig. 5 (full dataset unless ``n_patterns`` limits it).

    Both schemes run through the spec-driven batched pipeline
    (:meth:`repro.api.Experiment.dataset_sweep`); ``jobs`` and ``backend``
    shard the sweep across the execution runtime's workers
    (``backend="process"`` is the many-core path).  With a ``store``, a
    repeated run skips every already-evaluated pattern.
    """
    dataset = dataset if dataset is not None else default_dataset()
    atc = Experiment(
        ExperimentSpec.for_scheme("atc", ATCConfig(vth=vth)), store=store
    )
    datc = Experiment(ExperimentSpec.for_scheme("datc"), store=store)
    return Fig5Result(
        atc=atc.dataset_sweep(
            dataset, limit=n_patterns, jobs=jobs, backend=backend
        ),
        datc=datc.dataset_sweep(
            dataset, limit=n_patterns, jobs=jobs, backend=backend
        ),
    )


# ----------------------------------------------------------------------
# Fig. 6 — iso-correlation event cost (ATC at 0.2 V)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """Fig. 6: lowering ATC's threshold to match D-ATC's correlation."""

    pattern_id: int
    atc_low: PipelineResult  # ATC at 0.2 V
    datc: PipelineResult

    @property
    def event_ratio(self) -> float:
        """ATC(0.2 V) events / D-ATC events (paper: ~1.56)."""
        return self.atc_low.n_events / self.datc.n_events if self.datc.n_events else float("inf")

    @property
    def correlation_gap_pct(self) -> float:
        """|ATC(0.2 V) - D-ATC| correlation (paper: ~0, same by design)."""
        return abs(self.atc_low.correlation_pct - self.datc.correlation_pct)

    def format_table(self) -> str:
        """Paper-vs-measured rows for Fig. 6."""
        rows = [
            ("ATC (0.2 V) events", f"{PAPER_FIG6['atc_events']}", f"{self.atc_low.n_events}"),
            ("D-ATC events", f"{PAPER_FIG3['datc_events']}", f"{self.datc.n_events}"),
            ("event ratio ATC/D-ATC", f"{PAPER_FIG6['atc_vs_datc_event_ratio']:.2f}",
             f"{self.event_ratio:.2f}"),
            ("ATC (0.2 V) correlation %", "~96", f"{self.atc_low.correlation_pct:.2f}"),
            ("D-ATC correlation %", f"{PAPER_FIG3['datc_corr_pct']:.2f}",
             f"{self.datc.correlation_pct:.2f}"),
        ]
        header = f"{'Fig. 6 quantity':<28}{'paper':>12}{'measured':>12}"
        lines = [header, "-" * len(header)]
        lines += [f"{q:<28}{p:>12}{m:>12}" for q, p, m in rows]
        return "\n".join(lines)


def run_fig6(
    pattern_id: int = FIG3_PATTERN_ID,
    vth: float = 0.2,
    dataset: "DatasetSpec | None" = None,
) -> Fig6Result:
    """Regenerate Fig. 6 (same pattern as Fig. 3, lower ATC threshold)."""
    dataset = dataset if dataset is not None else default_dataset()
    pattern = dataset.pattern(pattern_id)
    return Fig6Result(
        pattern_id=pattern_id,
        atc_low=run_atc(pattern, ATCConfig(vth=vth)),
        datc=run_datc(pattern),
    )


# ----------------------------------------------------------------------
# Fig. 7 — events-vs-correlation trade-off for four random patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Result:
    """ATC threshold sweeps vs the D-ATC operating point (Fig. 7)."""

    pattern_ids: "tuple[int, ...]"
    atc_sweeps: "dict[int, list[SweepPoint]]"
    datc_points: "dict[int, SweepPoint]"

    def format_table(self) -> str:
        """Events / correlation at each threshold, per pattern."""
        lines = ["Fig. 7 — events vs correlation trade-off"]
        for pid in self.pattern_ids:
            lines.append(f"pattern {pid}:")
            lines.append(f"  {'Vth (V)':>9} {'events':>8} {'corr %':>8}")
            for pt in self.atc_sweeps[pid]:
                lines.append(
                    f"  {pt.parameter:>9.2f} {pt.n_events:>8d} {pt.correlation_pct:>8.2f}"
                )
            d = self.datc_points[pid]
            lines.append(
                f"  {'D-ATC':>9} {d.n_events:>8d} {d.correlation_pct:>8.2f}"
            )
        return "\n".join(lines)

    def datc_dominates(self, pid: int) -> bool:
        """True when no swept ATC point beats D-ATC on *both* axes.

        The paper's reading of Fig. 7: ATC only reaches D-ATC's
        correlation by spending (many) more events.
        """
        d = self.datc_points[pid]
        for pt in self.atc_sweeps[pid]:
            if pt.correlation_pct >= d.correlation_pct and pt.n_events <= d.n_events:
                return False
        return True


def run_fig7(
    pattern_ids: "tuple[int, ...]" = (5, 23, 57, 120),
    vths: "tuple[float, ...]" = (0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6),
    dataset: "DatasetSpec | None" = None,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    store: "ResultStore | None" = None,
) -> Fig7Result:
    """Regenerate Fig. 7 on four (fixed-seed "random") patterns.

    Each pattern's threshold sweep is one generic spec-substitution sweep
    (:meth:`repro.api.Experiment.sweep` on ``"encoder.config.vth"``);
    ``jobs``/``backend`` parallelise it on the execution runtime and a
    ``store`` memoises every operating point.
    """
    dataset = dataset if dataset is not None else default_dataset()
    atc = Experiment(ExperimentSpec.for_scheme("atc"), store=store)
    datc = Experiment(ExperimentSpec.for_scheme("datc"), store=store)
    atc_sweeps = {}
    datc_points = {}
    for pid in pattern_ids:
        pattern = dataset.pattern(pid)
        atc_sweeps[pid] = atc.sweep(
            pattern,
            "encoder.config.vth",
            [float(v) for v in vths],
            jobs=jobs,
            backend=backend,
        )
        datc_points[pid] = datc.evaluate(pattern, parameter=-1.0)
    return Fig7Result(
        pattern_ids=tuple(pattern_ids), atc_sweeps=atc_sweeps, datc_points=datc_points
    )


# ----------------------------------------------------------------------
# Sec. III-B — transmitted-symbol comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SymbolComparison:
    """The Sec. III-B symbol-count bullet list as a table."""

    pattern_id: int
    n_samples: int
    packet_symbols: int
    atc_0v3_symbols: int
    atc_0v2_symbols: int
    datc_symbols: int
    datc_events: int

    def format_table(self) -> str:
        """Paper-vs-measured symbol counts for the 20 s wave."""
        rows = [
            ("packet-based (12-bit ADC)", PAPER_SYMBOLS["packet_based"], self.packet_symbols),
            ("ATC (0.3 V)", PAPER_SYMBOLS["atc_0v3"], self.atc_0v3_symbols),
            ("ATC (0.2 V)", PAPER_SYMBOLS["atc_0v2"], self.atc_0v2_symbols),
            ("D-ATC (events x 5)", PAPER_SYMBOLS["datc"], self.datc_symbols),
        ]
        header = f"{'system':<28}{'paper symbols':>16}{'measured':>12}"
        lines = [header, "-" * len(header)]
        lines += [f"{q:<28}{p:>16,}{m:>12,}" for q, p, m in rows]
        lines.append(
            f"D-ATC / packet ratio: paper {PAPER_SYMBOLS['datc'] / PAPER_SYMBOLS['packet_based']:.4f}, "
            f"measured {self.datc_symbols / self.packet_symbols:.4f}"
        )
        return "\n".join(lines)


def run_symbol_comparison(
    pattern_id: int = FIG3_PATTERN_ID,
    dataset: "DatasetSpec | None" = None,
) -> SymbolComparison:
    """Regenerate the Sec. III-B transmitted-symbol accounting."""
    dataset = dataset if dataset is not None else default_dataset()
    pattern = dataset.pattern(pattern_id)
    atc_03 = run_atc(pattern, ATCConfig(vth=0.3))
    atc_02 = run_atc(pattern, ATCConfig(vth=0.2))
    datc = run_datc(pattern)
    return SymbolComparison(
        pattern_id=pattern_id,
        n_samples=pattern.n_samples,
        packet_symbols=payload_symbol_count(pattern.n_samples, adc_bits=12),
        atc_0v3_symbols=atc_03.n_symbols,
        atc_0v2_symbols=atc_02.n_symbols,
        datc_symbols=datc.n_symbols,
        datc_events=datc.n_events,
    )


# ----------------------------------------------------------------------
# Table I — synthesis results
# ----------------------------------------------------------------------
def run_table1(config: "DATCConfig | None" = None) -> TableOne:
    """Regenerate Table I (see :mod:`repro.hardware.report`)."""
    return generate_table1(config)
