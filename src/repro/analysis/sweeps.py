"""Parameter sweeps: threshold, frame size, DAC resolution, pulse loss.

These are the workhorses behind Figs. 5-7 and the ablation benches (the
paper states "different DAC resolution have been examined to determine the
best trade-off between accuracy and complexity" and that artifact pulses
act "similar to pulse missing" — both studies are reproduced here).

Execution model: each sweep declares its operating-point grid, encodes
every point through the execution runtime
(:mod:`repro.runtime.executors` — opt-in ``jobs`` workers on the
``serial``/``thread``/``process`` backend of choice), and — since all of
a sweep's streams share the pattern's observation window — decodes and
scores the whole grid through the batched receiver engine
(:func:`repro.rx.decoders.reconstruct_batch` + one stacked correlation
call).  The dataset sweep shards its pattern grid into contiguous chunks
(:func:`repro.runtime.executors.plan_shards`) and runs
:func:`repro.core.pipeline.run_batch` per shard, so a multi-process run
ships only the per-pattern summary arrays back over IPC.  Grid order is
preserved and results are element-wise bit-identical to the sequential
per-stream run on every backend (the grid workers are module-level
functions bound with :func:`functools.partial`, so they pickle under the
``spawn`` start method too).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..core.atc import atc_encode
from ..core.config import ATCConfig, DATCConfig
from ..core.datc import datc_encode
from ..core.events import EventStream
from ..core.pipeline import (
    DEFAULT_FS_OUT,
    DEFAULT_WINDOW_S,
    PipelineResult,
    run_batch,
    run_datc,
)
from ..runtime.executors import default_jobs, map_jobs, plan_shards, resolve_backend
from ..rx.correlation import aligned_correlation_percent_batch
from ..rx.decoders import reconstruct_batch
from ..signals.dataset import DatasetSpec, Pattern
from ..uwb.channel import UWBChannel
from ..uwb.link import LinkConfig, simulate_link_batch

__all__ = [
    "SweepPoint",
    "LinkSweepPoint",
    "atc_threshold_sweep",
    "dataset_sweep",
    "DatasetSweepResult",
    "frame_size_sweep",
    "dac_resolution_sweep",
    "link_erasure_sweep",
    "pulse_loss_sweep",
    "weight_sweep",
]


def _sweep_point(parameter: float, result: PipelineResult) -> SweepPoint:
    return SweepPoint(
        parameter=float(parameter),
        correlation_pct=result.correlation_pct,
        n_events=result.n_events,
        n_symbols=result.n_symbols,
    )


# ----------------------------------------------------------------------
# Grid workers.  Module-level (bound with functools.partial) so every
# sweep's fan-out pickles under the process backend's spawn start method.
# ----------------------------------------------------------------------
def _encode_atc_at_vth(vth: float, emg: np.ndarray, fs: float) -> EventStream:
    """One ATC threshold-sweep point: encode at a fixed ``vth``."""
    return atc_encode(emg, fs, ATCConfig(vth=vth))[0]


def _encode_datc_config(
    config: DATCConfig, emg: np.ndarray, fs: float
) -> EventStream:
    """One D-ATC sweep point: encode under ``config``."""
    return datc_encode(emg, fs, config)[0]


def _drop_events_point(
    item: "tuple[int, float]", stream: EventStream, seed: int
) -> EventStream:
    """One pulse-loss point: erase events with probability ``item[1]``."""
    i, p = item
    rng = np.random.default_rng((seed, i))
    keep = rng.random(stream.n_events) >= p
    return stream.drop_events(keep)


def _encode_noisy_point(
    item: "tuple[int, float]",
    emg: np.ndarray,
    fs: float,
    scheme: str,
    config: "ATCConfig | DATCConfig",
    signal_power: float,
    seed: int,
) -> EventStream:
    """One SNR point: add white noise at ``item[1]`` dB, then encode."""
    i, snr_db = item
    rng = np.random.default_rng((seed, i))
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    noisy = emg + np.sqrt(noise_power) * rng.standard_normal(emg.size)
    encode = atc_encode if scheme == "atc" else datc_encode
    return encode(noisy, fs, config)[0]


def _evaluate_dac_bits(bits: int, pattern: Pattern) -> SweepPoint:
    """One DAC-resolution point (per-stream decode: point-specific bits)."""
    n_levels = 1 << bits
    config = DATCConfig(
        dac_bits=bits,
        n_levels=n_levels,
        interval_step=0.48 / n_levels,
        min_level=1,
        initial_level=n_levels // 2,
    )
    return _sweep_point(bits, run_datc(pattern, config))


def _dataset_shard(
    ids: np.ndarray,
    dataset: DatasetSpec,
    scheme: str,
    config: "ATCConfig | DATCConfig | None",
) -> "tuple[np.ndarray, np.ndarray]":
    """Evaluate one contiguous shard of dataset patterns end to end.

    Generates the shard's patterns, runs the batched pipeline, and
    returns only the per-pattern summary arrays (correlation %, event
    counts) — the IPC payload of a multi-process dataset sweep stays a
    few hundred bytes per shard instead of full traces/reconstructions.
    Per-row results are bit-identical whatever the shard boundaries,
    because every batched stage is bit-identical per row.
    """
    patterns = [dataset.pattern(int(i)) for i in ids]
    results = run_batch(patterns, scheme, config)
    return (
        np.array([r.correlation_pct for r in results]),
        np.array([r.n_events for r in results], dtype=np.int64),
    )


def _batched_scores(
    streams: "list[EventStream]",
    scheme: str,
    config,
    reference: np.ndarray,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> np.ndarray:
    """Decode + score a sweep's streams against one reference in two calls.

    Every sweep evaluates many operating points of the *same* pattern, so
    the streams share an observation window and the reference is common:
    one batched reconstruction, one stacked correlation.
    """
    recons = reconstruct_batch(
        streams, scheme, config, fs_out=fs_out, window_s=window_s
    )
    references = np.broadcast_to(reference, (len(streams), reference.size))
    return aligned_correlation_percent_batch(recons, references)


def _batched_sweep(
    items,
    encode,
    parameter,
    scheme: str,
    config,
    reference: np.ndarray,
    jobs: "int | None",
    backend: "str | None" = None,
    fs_out: float = DEFAULT_FS_OUT,
    window_s: float = DEFAULT_WINDOW_S,
) -> "list[SweepPoint]":
    """The shared shape of a batched-receiver sweep.

    Produce one stream per grid item (``encode`` fans out over ``jobs``
    workers on the selected runtime ``backend``), run the receiver side
    once via :func:`_batched_scores`, and assemble the points in grid
    order; ``parameter`` maps an item to the value the point reports.
    """
    items = list(items)
    if not items:
        return []
    streams = map_jobs(encode, items, jobs, backend=backend)
    corrs = _batched_scores(
        streams, scheme, config, reference, fs_out=fs_out, window_s=window_s
    )
    return [
        SweepPoint(
            parameter=float(parameter(item)),
            correlation_pct=float(corr),
            n_events=stream.n_events,
            n_symbols=stream.n_symbols,
        )
        for item, corr, stream in zip(items, corrs, streams)
    ]


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep: parameter, correlation, events."""

    parameter: float
    correlation_pct: float
    n_events: int
    n_symbols: int


def atc_threshold_sweep(
    pattern: Pattern,
    vths: "np.ndarray | list[float]",
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """ATC correlation/events across fixed threshold voltages (Fig. 7).

    Encoding fans out over ``jobs`` workers on the selected ``backend``;
    the receiver side (reconstruction + correlation) runs once, batched
    across all thresholds.
    """
    return _batched_sweep(
        (float(v) for v in vths),
        partial(_encode_atc_at_vth, emg=pattern.emg, fs=pattern.fs),
        lambda vth: vth,
        "atc",
        None,
        pattern.ground_truth_envelope(window_s=DEFAULT_WINDOW_S),
        jobs,
        backend,
    )


@dataclass(frozen=True)
class DatasetSweepResult:
    """Per-pattern metrics of one scheme across the dataset (Fig. 5)."""

    scheme: str
    pattern_ids: np.ndarray
    correlations_pct: np.ndarray
    n_events: np.ndarray

    @property
    def correlation_range(self) -> "tuple[float, float]":
        """(min, max) correlation across patterns."""
        return float(self.correlations_pct.min()), float(self.correlations_pct.max())

    @property
    def correlation_mean(self) -> float:
        """Mean correlation across patterns."""
        return float(self.correlations_pct.mean())

    @property
    def event_spread(self) -> float:
        """Coefficient of variation of the event counts (stability metric).

        The paper: "the dynamic thresholding technique is even stable as a
        function of the number of transmitted events for different
        patterns while in the constant thresholding it is not".
        """
        mean = self.n_events.mean()
        return float(self.n_events.std() / mean) if mean > 0 else float("inf")


def dataset_sweep(
    dataset: DatasetSpec,
    scheme: str,
    atc_config: "ATCConfig | None" = None,
    datc_config: "DATCConfig | None" = None,
    limit: "int | None" = None,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    shard_size: "int | None" = None,
) -> DatasetSweepResult:
    """Run one scheme over (a prefix of) the dataset.

    The pattern grid is split into contiguous shards
    (:func:`repro.runtime.executors.plan_shards`); each shard generates
    its patterns and runs the fully batched pipeline
    (:func:`repro.core.pipeline.run_batch`) in one worker task, returning
    only the per-pattern summary arrays.  ``backend="process"`` is the
    many-core path (pattern synthesis, encode, and decode all leave the
    parent process); ``serial``/``jobs=None`` is one shard — the whole
    grid in a single batched call.  Results are element-wise
    bit-identical across backends and shard sizes.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    n = dataset.n_patterns if limit is None else min(limit, dataset.n_patterns)
    ids = np.arange(n)
    config = atc_config if scheme == "atc" else datc_config
    if resolve_backend(backend, jobs) == "serial":
        shards = [slice(0, n)] if n else []
    else:
        shards = plan_shards(n, jobs if jobs is not None else default_jobs(), shard_size)
    parts = map_jobs(
        partial(_dataset_shard, dataset=dataset, scheme=scheme, config=config),
        [ids[s] for s in shards],
        jobs,
        backend=backend,
        shard_size=1,  # the pattern grid is already sharded; one task each
    )
    corr = (
        np.concatenate([p[0] for p in parts]) if parts else np.zeros(0)
    )
    events = (
        np.concatenate([p[1] for p in parts])
        if parts
        else np.zeros(0, dtype=np.int64)
    )
    return DatasetSweepResult(
        scheme=scheme, pattern_ids=ids, correlations_pct=corr, n_events=events
    )


def frame_size_sweep(
    pattern: Pattern,
    selectors: "tuple[int, ...]" = (0, 1, 2, 3),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """D-ATC across the four legal frame sizes (ablation).

    The frame size only affects the *encoder*; the decode parameters
    (``vref``, ``dac_bits``) are common, so the receiver side runs once,
    batched across the grid.
    """
    configs = [DATCConfig(frame_selector=int(sel)) for sel in selectors]
    return _batched_sweep(
        configs,
        partial(_encode_datc_config, emg=pattern.emg, fs=pattern.fs),
        lambda config: config.frame_size,
        "datc",
        configs[0] if configs else None,
        pattern.ground_truth_envelope(window_s=DEFAULT_WINDOW_S),
        jobs,
        backend,
    )


def dac_resolution_sweep(
    pattern: Pattern,
    bits_list: "tuple[int, ...]" = (2, 3, 4, 5, 6),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """D-ATC across DAC resolutions (the paper's accuracy/complexity study).

    The interval ladder keeps the same top fraction (0.48 of the frame) at
    every resolution, so only the quantisation granularity changes; the
    symbol cost per event is ``1 + bits``.

    This sweep stays on the per-stream receiver path: each point decodes
    with a *different* ``dac_bits``, which the batched engine (one shared
    decode config per call) does not cover.
    """
    return map_jobs(
        partial(_evaluate_dac_bits, pattern=pattern), bits_list, jobs, backend=backend
    )


def pulse_loss_sweep(
    pattern: Pattern,
    loss_probs: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5),
    config: "DATCConfig | None" = None,
    seed: int = 7,
    window_s: float = DEFAULT_WINDOW_S,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """D-ATC correlation under event erasures (artifact-robustness study).

    Drops whole events with probability p (the dominant OOK failure is
    losing the marker pulse, which erases the event) and re-runs the
    receiver — all loss points decoded and scored in one batched call.
    """
    config = config if config is not None else DATCConfig()
    loss_probs = [float(p) for p in loss_probs]
    for p in loss_probs:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
    if not loss_probs:
        return []
    base = run_datc(pattern, config)

    return _batched_sweep(
        enumerate(loss_probs),
        partial(_drop_events_point, stream=base.stream, seed=seed),
        lambda item: item[1],
        "datc",
        config,
        pattern.ground_truth_envelope(window_s=window_s),
        jobs,
        backend,
        fs_out=base.fs_out,
        window_s=window_s,
    )


@dataclass(frozen=True)
class LinkSweepPoint:
    """One operating point of a physical-link sweep."""

    erasure_prob: float
    event_delivery_ratio: float
    level_error_ratio: float
    n_pulses: int
    tx_energy_j: float


def link_erasure_sweep(
    stream: EventStream,
    erasure_probs: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5),
    config: "LinkConfig | None" = None,
    seed: int = 13,
) -> "list[LinkSweepPoint]":
    """Event delivery and level integrity vs pulse-erasure probability.

    The pulse-level companion of :func:`pulse_loss_sweep` (which drops
    whole *events*): here individual radiated pulses are erased by the
    channel, so lost markers shift bursts and lost payload pulses corrupt
    levels — the paper's "artifacts effect is similar to pulse missing"
    argument at the physical layer.  All operating points share one
    batched link call (:func:`repro.uwb.link.simulate_link_batch`) with a
    per-point channel and a single RNG.
    """
    config = config if config is not None else LinkConfig()
    erasure_probs = [float(p) for p in erasure_probs]
    for p in erasure_probs:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"erasure probability must be in [0, 1], got {p}")
    if not erasure_probs:
        return []
    channels = [UWBChannel(erasure_prob=p) for p in erasure_probs]
    rng = np.random.default_rng(seed)
    results = simulate_link_batch(
        [stream] * len(channels), config, channel=channels, rng=rng
    )
    return [
        LinkSweepPoint(
            erasure_prob=p,
            event_delivery_ratio=r.event_delivery_ratio,
            level_error_ratio=r.level_error_ratio,
            n_pulses=r.n_pulses,
            tx_energy_j=r.tx_energy_j,
        )
        for p, r in zip(erasure_probs, results)
    ]


def snr_sweep(
    pattern: Pattern,
    snr_dbs: "tuple[float, ...]" = (30.0, 20.0, 10.0, 5.0, 0.0),
    scheme: str = "datc",
    seed: int = 11,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Correlation vs. additive input noise (robustness to signal quality).

    White Gaussian noise is added to the raw sEMG at the requested SNR
    (relative to the *active* signal power, i.e. rectified-mean-square
    over the recording) before encoding — the "robust w.r.t. the sEMG
    signal variability" claim, made quantitative.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    signal_power = float(np.mean(pattern.emg ** 2))
    config = ATCConfig() if scheme == "atc" else DATCConfig()

    # Score against the CLEAN recording's envelope: the question is how
    # much of the true signal survives the noisy front-end.
    return _batched_sweep(
        enumerate(float(s) for s in snr_dbs),
        partial(
            _encode_noisy_point,
            emg=pattern.emg,
            fs=pattern.fs,
            scheme=scheme,
            config=config,
            signal_power=signal_power,
            seed=seed,
        ),
        lambda item: item[1],
        scheme,
        config,
        pattern.ground_truth_envelope(),
        jobs,
        backend,
    )


def weight_sweep(
    pattern: Pattern,
    weight_sets: "tuple[tuple[float, float, float], ...]" = (
        (0.35, 0.65, 1.0),  # the paper's empirically-chosen weights
        (1.0, 1.0, 1.0),    # uniform history
        (0.0, 0.0, 2.0),    # last frame only (memoryless)
        (0.1, 0.3, 1.6),    # strongly recency-weighted
    ),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[tuple[tuple[float, float, float], SweepPoint]]":
    """Sensitivity of D-ATC to the predictor weights (ablation).

    Weight triples are normalised to sum to the paper's divisor (2) so
    the interval ladder keeps its meaning.  The weights only steer the
    encoder's predictor, so the receiver side runs once, batched.
    """
    weight_sets = [tuple(w) for w in weight_sets]  # survive generator input
    configs = []
    for weights in weight_sets:
        total = sum(weights)
        if total <= 0:
            raise ValueError(f"weights must have positive sum, got {weights}")
        scaled = tuple(2.0 * w / total for w in weights)
        configs.append(DATCConfig(weights=scaled))
    points = _batched_sweep(
        configs,
        partial(_encode_datc_config, emg=pattern.emg, fs=pattern.fs),
        lambda config: config.weights[2],
        "datc",
        configs[0] if configs else None,
        pattern.ground_truth_envelope(window_s=DEFAULT_WINDOW_S),
        jobs,
        backend,
    )
    return list(zip(weight_sets, points))
