"""Parameter sweeps: threshold, frame size, DAC resolution, pulse loss.

These are the workhorses behind Figs. 5-7 and the ablation benches (the
paper states "different DAC resolution have been examined to determine the
best trade-off between accuracy and complexity" and that artifact pulses
act "similar to pulse missing" — both studies are reproduced here).

Execution model: each sweep declares its operating-point grid and maps an
evaluation function over it.  The dataset sweep encodes all patterns at
once through the batched encoder paths (:func:`repro.core.pipeline.run_batch`),
and every sweep takes an opt-in ``jobs`` argument that fans the grid out
over a ``concurrent.futures`` thread pool — grid order is preserved and
results are identical to the sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ATCConfig, DATCConfig
from ..core.pipeline import (
    DEFAULT_WINDOW_S,
    PipelineResult,
    map_jobs,
    run_atc,
    run_batch,
    run_datc,
)
from ..rx.correlation import aligned_correlation_percent
from ..rx.reconstruction import reconstruct_hybrid
from ..signals.dataset import DatasetSpec, Pattern
from ..uwb.channel import UWBChannel

__all__ = [
    "SweepPoint",
    "atc_threshold_sweep",
    "dataset_sweep",
    "DatasetSweepResult",
    "frame_size_sweep",
    "dac_resolution_sweep",
    "pulse_loss_sweep",
    "weight_sweep",
]


def _sweep_point(parameter: float, result: PipelineResult) -> SweepPoint:
    return SweepPoint(
        parameter=float(parameter),
        correlation_pct=result.correlation_pct,
        n_events=result.n_events,
        n_symbols=result.n_symbols,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a sweep: parameter, correlation, events."""

    parameter: float
    correlation_pct: float
    n_events: int
    n_symbols: int


def atc_threshold_sweep(
    pattern: Pattern, vths: "np.ndarray | list[float]", jobs: "int | None" = None
) -> "list[SweepPoint]":
    """ATC correlation/events across fixed threshold voltages (Fig. 7)."""

    def evaluate(vth: float) -> SweepPoint:
        return _sweep_point(vth, run_atc(pattern, ATCConfig(vth=float(vth))))

    return map_jobs(evaluate, (float(v) for v in vths), jobs)


@dataclass(frozen=True)
class DatasetSweepResult:
    """Per-pattern metrics of one scheme across the dataset (Fig. 5)."""

    scheme: str
    pattern_ids: np.ndarray
    correlations_pct: np.ndarray
    n_events: np.ndarray

    @property
    def correlation_range(self) -> "tuple[float, float]":
        """(min, max) correlation across patterns."""
        return float(self.correlations_pct.min()), float(self.correlations_pct.max())

    @property
    def correlation_mean(self) -> float:
        """Mean correlation across patterns."""
        return float(self.correlations_pct.mean())

    @property
    def event_spread(self) -> float:
        """Coefficient of variation of the event counts (stability metric).

        The paper: "the dynamic thresholding technique is even stable as a
        function of the number of transmitted events for different
        patterns while in the constant thresholding it is not".
        """
        mean = self.n_events.mean()
        return float(self.n_events.std() / mean) if mean > 0 else float("inf")


def dataset_sweep(
    dataset: DatasetSpec,
    scheme: str,
    atc_config: "ATCConfig | None" = None,
    datc_config: "DATCConfig | None" = None,
    limit: "int | None" = None,
    jobs: "int | None" = None,
) -> DatasetSweepResult:
    """Run one scheme over (a prefix of) the dataset.

    All patterns are encoded in one batched call (the patterns of a
    dataset share rate and length); ``jobs`` parallelises pattern
    generation and the receiver-side scoring.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    n = dataset.n_patterns if limit is None else min(limit, dataset.n_patterns)
    ids = np.arange(n)
    patterns = map_jobs(lambda i: dataset.pattern(int(i)), ids, jobs)
    config = atc_config if scheme == "atc" else datc_config
    results = run_batch(patterns, scheme, config, jobs=jobs)
    corr = np.array([r.correlation_pct for r in results])
    events = np.array([r.n_events for r in results], dtype=np.int64)
    return DatasetSweepResult(
        scheme=scheme, pattern_ids=ids, correlations_pct=corr, n_events=events
    )


def frame_size_sweep(
    pattern: Pattern,
    selectors: "tuple[int, ...]" = (0, 1, 2, 3),
    jobs: "int | None" = None,
) -> "list[SweepPoint]":
    """D-ATC across the four legal frame sizes (ablation)."""

    def evaluate(sel: int) -> SweepPoint:
        config = DATCConfig(frame_selector=sel)
        return _sweep_point(config.frame_size, run_datc(pattern, config))

    return map_jobs(evaluate, selectors, jobs)


def dac_resolution_sweep(
    pattern: Pattern,
    bits_list: "tuple[int, ...]" = (2, 3, 4, 5, 6),
    jobs: "int | None" = None,
) -> "list[SweepPoint]":
    """D-ATC across DAC resolutions (the paper's accuracy/complexity study).

    The interval ladder keeps the same top fraction (0.48 of the frame) at
    every resolution, so only the quantisation granularity changes; the
    symbol cost per event is ``1 + bits``.
    """

    def evaluate(bits: int) -> SweepPoint:
        n_levels = 1 << bits
        config = DATCConfig(
            dac_bits=bits,
            n_levels=n_levels,
            interval_step=0.48 / n_levels,
            min_level=1,
            initial_level=n_levels // 2,
        )
        return _sweep_point(bits, run_datc(pattern, config))

    return map_jobs(evaluate, bits_list, jobs)


def pulse_loss_sweep(
    pattern: Pattern,
    loss_probs: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5),
    config: "DATCConfig | None" = None,
    seed: int = 7,
    window_s: float = DEFAULT_WINDOW_S,
    jobs: "int | None" = None,
) -> "list[SweepPoint]":
    """D-ATC correlation under event erasures (artifact-robustness study).

    Drops whole events with probability p (the dominant OOK failure is
    losing the marker pulse, which erases the event) and re-runs the
    receiver reconstruction.
    """
    config = config if config is not None else DATCConfig()
    for p in loss_probs:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
    base = run_datc(pattern, config)
    reference = pattern.ground_truth_envelope(window_s=window_s)

    def evaluate(item: "tuple[int, float]") -> SweepPoint:
        i, p = item
        rng = np.random.default_rng((seed, i))
        keep = rng.random(base.stream.n_events) >= p
        stream = base.stream.drop_events(keep)
        recon = reconstruct_hybrid(
            stream,
            fs_out=base.fs_out,
            vref=config.vref,
            dac_bits=config.dac_bits,
            smooth_window_s=window_s,
        )
        corr = aligned_correlation_percent(recon, reference)
        return SweepPoint(
            parameter=float(p),
            correlation_pct=corr,
            n_events=stream.n_events,
            n_symbols=stream.n_symbols,
        )

    return map_jobs(evaluate, enumerate(loss_probs), jobs)


def snr_sweep(
    pattern: Pattern,
    snr_dbs: "tuple[float, ...]" = (30.0, 20.0, 10.0, 5.0, 0.0),
    scheme: str = "datc",
    seed: int = 11,
    jobs: "int | None" = None,
) -> "list[SweepPoint]":
    """Correlation vs. additive input noise (robustness to signal quality).

    White Gaussian noise is added to the raw sEMG at the requested SNR
    (relative to the *active* signal power, i.e. rectified-mean-square
    over the recording) before encoding — the "robust w.r.t. the sEMG
    signal variability" claim, made quantitative.
    """
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    signal_power = float(np.mean(pattern.emg ** 2))

    def evaluate(item: "tuple[int, float]") -> SweepPoint:
        i, snr_db = item
        rng = np.random.default_rng((seed, i))
        noise_power = signal_power / (10.0 ** (snr_db / 10.0))
        noisy = pattern.emg + np.sqrt(noise_power) * rng.standard_normal(
            pattern.emg.size
        )
        noisy_pattern = Pattern(
            pattern_id=pattern.pattern_id,
            subject=pattern.subject,
            fs=pattern.fs,
            emg=noisy,
            force=pattern.force,
        )
        if scheme == "atc":
            result = run_atc(noisy_pattern)
        else:
            result = run_datc(noisy_pattern)
        # Score against the CLEAN recording's envelope: the question is
        # how much of the true signal survives the noisy front-end.
        reference = pattern.ground_truth_envelope()
        corr = aligned_correlation_percent(result.reconstruction, reference)
        return SweepPoint(
            parameter=float(snr_db),
            correlation_pct=corr,
            n_events=result.n_events,
            n_symbols=result.n_symbols,
        )

    return map_jobs(evaluate, enumerate(snr_dbs), jobs)


def weight_sweep(
    pattern: Pattern,
    weight_sets: "tuple[tuple[float, float, float], ...]" = (
        (0.35, 0.65, 1.0),  # the paper's empirically-chosen weights
        (1.0, 1.0, 1.0),    # uniform history
        (0.0, 0.0, 2.0),    # last frame only (memoryless)
        (0.1, 0.3, 1.6),    # strongly recency-weighted
    ),
    jobs: "int | None" = None,
) -> "list[tuple[tuple[float, float, float], SweepPoint]]":
    """Sensitivity of D-ATC to the predictor weights (ablation).

    Weight triples are normalised to sum to the paper's divisor (2) so
    the interval ladder keeps its meaning.
    """

    def evaluate(
        weights: "tuple[float, float, float]",
    ) -> "tuple[tuple[float, float, float], SweepPoint]":
        total = sum(weights)
        if total <= 0:
            raise ValueError(f"weights must have positive sum, got {weights}")
        scaled = tuple(2.0 * w / total for w in weights)
        config = DATCConfig(weights=scaled)
        return weights, _sweep_point(scaled[2], run_datc(pattern, config))

    return map_jobs(evaluate, weight_sets, jobs)
