"""Parameter sweeps: threshold, frame size, DAC resolution, pulse loss.

These are the workhorses behind Figs. 5-7 and the ablation benches (the
paper states "different DAC resolution have been examined to determine the
best trade-off between accuracy and complexity" and that artifact pulses
act "similar to pulse missing" — both studies are reproduced here).

**Deprecated module-level wrappers.**  Since the declarative API redesign
every sweep is one :class:`repro.api.Experiment` call: the generic
:meth:`~repro.api.Experiment.sweep` substitutes values into the spec tree
(``"encoder.config.vth"``, whole ``DATCConfig`` objects, or the data axes
``"input.snr_db"`` / ``"stream.drop_prob"``),
:meth:`~repro.api.Experiment.dataset_sweep` shards the pattern grid over
the execution runtime, and :meth:`~repro.api.Experiment.link_sweep`
drives the batched physical link.  The functions below survive as thin
wrappers — each emits one :class:`DeprecationWarning` and returns results
bit-identical to the spec path (asserted by
``tests/api/test_legacy_wrappers.py``).  Attach a
:class:`~repro.runtime.store.ResultStore` to the :class:`Experiment` to
memoise any of them; the wrappers always run cold.

Execution model (unchanged): each sweep encodes its grid through
:func:`repro.runtime.executors.map_jobs` and decodes + scores the whole
grid through the batched receiver engine in one call — the DAC-resolution
sweep now included, via per-row ``dac_bits`` in
:func:`repro.rx.decoders.reconstruct_batch`.
"""

from __future__ import annotations

import numpy as np

from ..api import (
    DatasetSweepResult,
    Experiment,
    ExperimentSpec,
    LinkSweepPoint,
    SweepPoint,
)
from ..core.config import ATCConfig, DATCConfig
from ..core.events import EventStream
from ..core.pipeline import DEFAULT_WINDOW_S, warn_legacy
from ..signals.dataset import DatasetSpec, Pattern
from ..uwb.link import LinkConfig

__all__ = [
    "SweepPoint",
    "LinkSweepPoint",
    "atc_threshold_sweep",
    "dataset_sweep",
    "DatasetSweepResult",
    "frame_size_sweep",
    "dac_resolution_sweep",
    "link_erasure_sweep",
    "pulse_loss_sweep",
    "weight_sweep",
]


def _frame_size_parameter(config: DATCConfig) -> float:
    """Sweep-point parameter of a frame-size point: the frame length."""
    return float(config.frame_size)


def _dac_bits_parameter(config: DATCConfig) -> float:
    """Sweep-point parameter of a DAC-resolution point: the bit count."""
    return float(config.dac_bits)


def _last_weight_parameter(config: DATCConfig) -> float:
    """Sweep-point parameter of a weight point: the newest-frame weight."""
    return float(config.weights[2])


def atc_threshold_sweep(
    pattern: Pattern,
    vths: "np.ndarray | list[float]",
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "encoder.config.vth", vths)``.

    ATC correlation/events across fixed threshold voltages (Fig. 7).
    """
    warn_legacy(
        "atc_threshold_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "encoder.config.vth", vths)',
    )
    experiment = Experiment(ExperimentSpec.for_scheme("atc"))
    return experiment.sweep(
        pattern,
        "encoder.config.vth",
        [float(v) for v in vths],
        jobs=jobs,
        backend=backend,
    )


def dataset_sweep(
    dataset: DatasetSpec,
    scheme: str,
    atc_config: "ATCConfig | None" = None,
    datc_config: "DATCConfig | None" = None,
    limit: "int | None" = None,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    shard_size: "int | None" = None,
) -> DatasetSweepResult:
    """Deprecated: ``Experiment(spec).dataset_sweep(dataset, ...)``.

    Run one scheme over (a prefix of) the dataset, sharded over the
    execution runtime.
    """
    warn_legacy(
        "dataset_sweep",
        "repro.api.Experiment(spec).dataset_sweep(dataset, ...)",
    )
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    config = atc_config if scheme == "atc" else datc_config
    experiment = Experiment(ExperimentSpec.for_scheme(scheme, config))
    return experiment.dataset_sweep(
        dataset, limit=limit, jobs=jobs, backend=backend, shard_size=shard_size
    )


def frame_size_sweep(
    pattern: Pattern,
    selectors: "tuple[int, ...]" = (0, 1, 2, 3),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "encoder.config", configs)``.

    D-ATC across the four legal frame sizes (ablation).
    """
    warn_legacy(
        "frame_size_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "encoder.config", configs)',
    )
    configs = [DATCConfig(frame_selector=int(sel)) for sel in selectors]
    experiment = Experiment(ExperimentSpec.for_scheme("datc"))
    return experiment.sweep(
        pattern,
        "encoder.config",
        configs,
        jobs=jobs,
        backend=backend,
        parameter=_frame_size_parameter,
    )


def dac_resolution_config(bits: int) -> DATCConfig:
    """The D-ATC operating point of one DAC-resolution sweep point.

    The interval ladder keeps the same top fraction (0.48 of the frame) at
    every resolution, so only the quantisation granularity changes; the
    symbol cost per event is ``1 + bits``.
    """
    n_levels = 1 << int(bits)
    return DATCConfig(
        dac_bits=int(bits),
        n_levels=n_levels,
        interval_step=0.48 / n_levels,
        min_level=1,
        initial_level=n_levels // 2,
    )


def dac_resolution_sweep(
    pattern: Pattern,
    bits_list: "tuple[int, ...]" = (2, 3, 4, 5, 6),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "encoder.config", configs)``.

    D-ATC across DAC resolutions (the paper's accuracy/complexity study).
    Rides the batched decode path via per-row ``dac_bits``: every point
    decodes at its own resolution inside one ``reconstruct_batch`` call.
    """
    warn_legacy(
        "dac_resolution_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "encoder.config", '
        "[dac_resolution_config(b) for b in bits])",
    )
    configs = [dac_resolution_config(b) for b in bits_list]
    experiment = Experiment(ExperimentSpec.for_scheme("datc"))
    return experiment.sweep(
        pattern,
        "encoder.config",
        configs,
        jobs=jobs,
        backend=backend,
        parameter=_dac_bits_parameter,
    )


def pulse_loss_sweep(
    pattern: Pattern,
    loss_probs: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5),
    config: "DATCConfig | None" = None,
    seed: int = 7,
    window_s: float = DEFAULT_WINDOW_S,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "stream.drop_prob", probs)``.

    D-ATC correlation under event erasures (artifact-robustness study):
    whole events are dropped with probability p (the dominant OOK failure
    is losing the marker pulse, which erases the event).
    """
    warn_legacy(
        "pulse_loss_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "stream.drop_prob", probs)',
    )
    spec = ExperimentSpec.for_scheme("datc", config, window_s=window_s)
    return Experiment(spec).sweep(
        pattern,
        "stream.drop_prob",
        [float(p) for p in loss_probs],
        jobs=jobs,
        backend=backend,
        seed=seed,
    )


def link_erasure_sweep(
    stream: EventStream,
    erasure_probs: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5),
    config: "LinkConfig | None" = None,
    seed: int = 13,
) -> "list[LinkSweepPoint]":
    """Deprecated: ``Experiment(spec).link_sweep(stream, erasure_probs)``.

    Event delivery and level integrity vs pulse-erasure probability — the
    pulse-level companion of :func:`pulse_loss_sweep`, batched through
    :func:`repro.uwb.link.simulate_link_batch`.
    """
    warn_legacy(
        "link_erasure_sweep",
        "repro.api.Experiment(spec).link_sweep(stream, erasure_probs)",
    )
    spec = ExperimentSpec.for_scheme("datc", link=config or LinkConfig())
    return Experiment(spec).link_sweep(stream, erasure_probs, seed=seed)


def snr_sweep(
    pattern: Pattern,
    snr_dbs: "tuple[float, ...]" = (30.0, 20.0, 10.0, 5.0, 0.0),
    scheme: str = "datc",
    seed: int = 11,
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[SweepPoint]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "input.snr_db", snr_dbs)``.

    Correlation vs. additive input noise: white Gaussian noise is added to
    the raw sEMG at the requested SNR before encoding, scored against the
    *clean* recording's envelope.
    """
    warn_legacy(
        "snr_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "input.snr_db", snr_dbs)',
    )
    if scheme not in ("atc", "datc"):
        raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
    experiment = Experiment(ExperimentSpec.for_scheme(scheme))
    return experiment.sweep(
        pattern,
        "input.snr_db",
        [float(s) for s in snr_dbs],
        jobs=jobs,
        backend=backend,
        seed=seed,
    )


def weight_sweep(
    pattern: Pattern,
    weight_sets: "tuple[tuple[float, float, float], ...]" = (
        (0.35, 0.65, 1.0),  # the paper's empirically-chosen weights
        (1.0, 1.0, 1.0),    # uniform history
        (0.0, 0.0, 2.0),    # last frame only (memoryless)
        (0.1, 0.3, 1.6),    # strongly recency-weighted
    ),
    jobs: "int | None" = None,
    backend: "str | None" = None,
) -> "list[tuple[tuple[float, float, float], SweepPoint]]":
    """Deprecated: ``Experiment(spec).sweep(pattern, "encoder.config", configs)``.

    Sensitivity of D-ATC to the predictor weights (ablation).  Weight
    triples are normalised to sum to the paper's divisor (2) so the
    interval ladder keeps its meaning.
    """
    warn_legacy(
        "weight_sweep",
        'repro.api.Experiment(spec).sweep(pattern, "encoder.config", configs)',
    )
    weight_sets = [tuple(w) for w in weight_sets]  # survive generator input
    configs = []
    for weights in weight_sets:
        total = sum(weights)
        if total <= 0:
            raise ValueError(f"weights must have positive sum, got {weights}")
        scaled = tuple(2.0 * w / total for w in weights)
        configs.append(DATCConfig(weights=scaled))
    experiment = Experiment(ExperimentSpec.for_scheme("datc"))
    points = experiment.sweep(
        pattern,
        "encoder.config",
        configs,
        jobs=jobs,
        backend=backend,
        parameter=_last_weight_parameter,
    )
    return list(zip(weight_sets, points))
