"""Summary-statistics helpers shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a metric across patterns."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def format_row(self, label: str, unit: str = "") -> str:
        """One formatted text row for report tables."""
        return (
            f"{label:<24} n={self.n:<4d} mean={self.mean:8.2f}{unit} "
            f"std={self.std:7.2f} min={self.minimum:8.2f} "
            f"median={self.median:8.2f} max={self.maximum:8.2f}"
        )


def summarize(values: "np.ndarray | list[float]") -> Summary:
    """Summary statistics of a non-empty value collection."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty collection")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )
