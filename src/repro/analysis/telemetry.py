"""Perf-trajectory telemetry: machine-readable benchmark records.

Every ``repro bench`` subcommand appends one JSON record to
``BENCH_<area>.json`` (areas: encoder, rx, link, sweep, cache, kernels,
sessions)
so the speedups the CI gates assert stop evaporating between PRs — the
committed files *are* the performance trajectory.  ``repro bench
--report`` renders the trajectory and fails on a >20 % regression of an
area's headline metric against its previous committed point
(``BENCH_REGRESSION_PCT`` overrides the threshold).

Record layout (one list per file, append-only)::

    {
      "area": "encoder",
      "recorded_at": "2026-08-08T12:00:00Z",
      "git_sha": "93815be...",            # null outside a git checkout
      "host": {"platform": ..., "machine": ..., "python": ...,
               "numpy": ..., "cpu_count": ...},
      "params": {"signals": 16, "duration": 20.0, ...},
      "spec_keys": {"datc": "<spec.key()>"},
      "rows": [{"name": ..., "time_ms": ..., "throughput": ...,
                "speedup": ...}],
      "headline": {"metric": "batched-vs-loop speedup", "value": 8.1},
      "notes": null
    }

The headline is a *ratio* (speedup), not a wall-clock, so points taken on
different machines stay roughly comparable; the host block is there to
explain the residual scatter.  Files live in ``REPRO_BENCH_DIR`` when
set, else ``./benchmarks`` when that directory exists (the repo layout),
else the working directory.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import subprocess
import tempfile
import time
import warnings
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

__all__ = [
    "AREAS",
    "TelemetryError",
    "append_record",
    "bench_dir",
    "git_sha",
    "host_info",
    "load_trajectories",
    "make_record",
    "record_path",
    "render_report",
]

AREAS = (
    "encoder",
    "rx",
    "link",
    "sweep",
    "cache",
    "kernels",
    "sessions",
    "queue",
    "serve",
)
ENV_DIR = "REPRO_BENCH_DIR"
ENV_REGRESSION_PCT = "BENCH_REGRESSION_PCT"
DEFAULT_REGRESSION_PCT = 20.0
LOCK_TIMEOUT_S = 30.0


class TelemetryError(RuntimeError):
    """A trajectory file is unusable (corrupt, empty, or wrong shape).

    Raised only on the *strict* loading path (``bench --report``), where
    a damaged committed trajectory should be a pointed one-line failure.
    The append path stays lenient — a corrupt file self-heals by being
    rewritten whole.
    """


def bench_dir(explicit: "str | Path | None" = None) -> Path:
    """Where BENCH_*.json records live (flag > env > ./benchmarks > cwd)."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_DIR)
    if env:
        return Path(env)
    default = Path("benchmarks")
    return default if default.is_dir() else Path(".")


def record_path(area: str, directory: "str | Path | None" = None) -> Path:
    """The trajectory file of one bench area."""
    if area not in AREAS:
        raise ValueError(f"unknown bench area {area!r}; choose from {AREAS}")
    return bench_dir(directory) / f"BENCH_{area}.json"


def host_info() -> dict:
    """The execution environment a record was taken on.

    Includes the kernel backend that would actually dispatch
    (``kernel_backend``) and the numba version (``numba``, null when not
    installed) so trajectory points taken on different tiers stay
    attributable — a compiled-tier speedup point is not comparable to a
    numpy one without this.
    """
    from ..kernels import dispatch

    with warnings.catch_warnings():
        # Recording telemetry must not surface the one-time compiled-tier
        # fallback warning on numba-less hosts.
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        backend = dispatch.active_backend()
    if dispatch.numba_available():
        import numba

        numba_version = numba.__version__
    else:
        numba_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "kernel_backend": backend,
        "numba": numba_version,
    }


def git_sha() -> "str | None":
    """The current commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        )
        return out.stdout.strip() or None
    except Exception:
        return None


def make_record(
    area: str,
    headline_metric: str,
    headline_value: float,
    rows: "list[dict]",
    params: "dict | None" = None,
    spec_keys: "dict | None" = None,
    notes: "str | None" = None,
) -> dict:
    """Assemble one trajectory point (pure data, no I/O besides git)."""
    if area not in AREAS:
        raise ValueError(f"unknown bench area {area!r}; choose from {AREAS}")
    return {
        "area": area,
        "recorded_at": datetime.now(timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z"),
        "git_sha": git_sha(),
        "host": host_info(),
        "params": params or {},
        "spec_keys": spec_keys or {},
        "rows": rows,
        "headline": {
            "metric": headline_metric,
            "value": float(headline_value),
        },
        "notes": notes,
    }


def _load_file(path: Path, strict: bool = False) -> "list[dict]":
    """A trajectory file's records.

    Lenient (default): corrupt or missing files read as empty — the next
    append rewrites the file whole and the trajectory self-heals.
    Strict: a file that *exists* but is unparseable, empty, or not a
    record list raises :class:`TelemetryError` naming the file (a missing
    file still reads as empty — an area never benched is not damage).
    """
    if strict and path.exists():
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise TelemetryError(f"{path}: unreadable ({exc})") from None
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"{path}: not valid JSON ({exc})") from None
        if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data
        ):
            raise TelemetryError(
                f"{path}: expected a JSON list of records, got "
                f"{type(data).__name__}"
            )
        if not data:
            raise TelemetryError(f"{path}: holds no records (empty list)")
        return data
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []


@contextlib.contextmanager
def _append_lock(path: Path, timeout_s: float = LOCK_TIMEOUT_S):
    """Serialise appends to one trajectory file across processes.

    The append is a read-modify-write of the whole file; atomic replace
    alone keeps it uncorrupted but lets two concurrent queue workers read
    the same base list and silently drop each other's record.  A sidecar
    ``.lock`` file closes that window: ``flock`` where available (held
    locks die with their process, so no staleness), else an ``O_EXCL``
    spin whose stale locks are broken by mtime age.

    Both paths remove the sidecar on release, so a clean run leaves no
    ``.lock`` litter next to the trajectory.  The flock path guards the
    unlink-vs-open race (peer opens the path, we unlink it, peer locks
    an orphaned inode nobody else can see) by re-checking after locking
    that the file on disk is still the one we locked, retrying if not.
    """
    lock_path = path.with_name(path.name + ".lock")
    try:
        import fcntl
    except ImportError:
        fcntl = None
    if fcntl is not None:
        while True:
            fh = open(lock_path, "a+")
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                on_disk = os.stat(lock_path)
            except FileNotFoundError:
                # The previous holder unlinked it between our open and
                # our flock; we hold a lock on an orphan — start over.
                fh.close()
                continue
            if on_disk.st_ino != os.fstat(fh.fileno()).st_ino:
                fh.close()  # same race, path already points elsewhere
                continue
            break
        try:
            yield
        finally:
            # Unlink while still holding the lock: any peer that opened
            # the old inode will detect the swap and retry above.
            try:
                os.unlink(lock_path)
            except OSError:
                pass
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            fh.close()
        return
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                if time.time() - os.stat(lock_path).st_mtime > timeout_s:
                    os.unlink(lock_path)  # holder died; break the lock
                    continue
            except OSError:
                continue  # holder just released; retry immediately
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not acquire {lock_path} within {timeout_s}s"
                ) from None
            time.sleep(0.01)
    try:
        yield
    finally:
        os.close(fd)
        try:
            os.unlink(lock_path)
        except OSError:
            pass


def append_record(record: dict, directory: "str | Path | None" = None) -> Path:
    """Append one record to its area's BENCH_<area>.json.

    Safe under concurrent writers (multiple queue workers recording at
    once): the read-modify-write runs under :func:`_append_lock` and the
    final write is still an atomic temp-file replace, so records never
    interleave and readers never see a half-written file.
    """
    path = record_path(record["area"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _append_lock(path):
        records = _load_file(path)
        records.append(record)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(records, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return path


def load_trajectories(
    directory: "str | Path | None" = None, strict: bool = False
) -> "dict[str, list[dict]]":
    """All areas' committed records, in file (chronological) order.

    ``strict=True`` (the report path) raises :class:`TelemetryError` on
    a damaged file instead of silently reading it as empty.
    """
    out = {}
    for area in AREAS:
        records = _load_file(record_path(area, directory), strict=strict)
        if records:
            out[area] = records
    return out


def regression_pct() -> float:
    """The allowed headline drop in percent (BENCH_REGRESSION_PCT knob)."""
    return float(os.environ.get(ENV_REGRESSION_PCT, DEFAULT_REGRESSION_PCT))


def render_report(
    trajectories: "dict[str, list[dict]]", allowed_drop_pct: float
) -> "tuple[str, list[str]]":
    """The trajectory table plus the list of regression messages.

    A regression is the latest point's headline value dropping more than
    ``allowed_drop_pct`` percent below the previous committed point of
    the same area (headlines are higher-is-better ratios).
    """
    header = (
        f"{'area':<10}{'points':>7}{'latest':>22}"
        f"{'headline':>42}{'value':>9}{'prev':>9}{'delta':>9}"
    )
    lines = [header, "-" * len(header)]
    regressions: "list[str]" = []
    for area in AREAS:
        records = trajectories.get(area)
        if not records:
            continue
        latest = records[-1]
        value = latest["headline"]["value"]
        metric = latest["headline"]["metric"]
        prev = records[-2]["headline"]["value"] if len(records) > 1 else None
        if prev is None:
            delta_txt = "-"
        else:
            delta = 100.0 * (value - prev) / prev if prev else float("inf")
            delta_txt = f"{delta:+.1f}%"
            if prev > 0 and value < prev * (1.0 - allowed_drop_pct / 100.0):
                regressions.append(
                    f"{area}: headline '{metric}' fell {abs(delta):.1f}% "
                    f"({prev:.2f} -> {value:.2f}); allowed drop is "
                    f"{allowed_drop_pct:.0f}% (BENCH_REGRESSION_PCT)"
                )
        lines.append(
            f"{area:<10}{len(records):>7}{latest['recorded_at']:>22}"
            f"{metric:>42}{value:>9.2f}"
            f"{(f'{prev:.2f}' if prev is not None else '-'):>9}"
            f"{delta_txt:>9}"
        )
    return "\n".join(lines), regressions
