"""Perf-trajectory telemetry: machine-readable benchmark records.

Every ``repro bench`` subcommand appends one JSON record to
``BENCH_<area>.json`` (areas: encoder, rx, link, sweep, cache, kernels,
sessions)
so the speedups the CI gates assert stop evaporating between PRs — the
committed files *are* the performance trajectory.  ``repro bench
--report`` renders the trajectory and fails on a >20 % regression of an
area's headline metric against its previous committed point
(``BENCH_REGRESSION_PCT`` overrides the threshold).

Record layout (one list per file, append-only)::

    {
      "area": "encoder",
      "recorded_at": "2026-08-08T12:00:00Z",
      "git_sha": "93815be...",            # null outside a git checkout
      "host": {"platform": ..., "machine": ..., "python": ...,
               "numpy": ..., "cpu_count": ...},
      "params": {"signals": 16, "duration": 20.0, ...},
      "spec_keys": {"datc": "<spec.key()>"},
      "rows": [{"name": ..., "time_ms": ..., "throughput": ...,
                "speedup": ...}],
      "headline": {"metric": "batched-vs-loop speedup", "value": 8.1},
      "notes": null
    }

The headline is a *ratio* (speedup), not a wall-clock, so points taken on
different machines stay roughly comparable; the host block is there to
explain the residual scatter.  Files live in ``REPRO_BENCH_DIR`` when
set, else ``./benchmarks`` when that directory exists (the repo layout),
else the working directory.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import tempfile
import warnings
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

__all__ = [
    "AREAS",
    "append_record",
    "bench_dir",
    "git_sha",
    "host_info",
    "load_trajectories",
    "make_record",
    "record_path",
    "render_report",
]

AREAS = ("encoder", "rx", "link", "sweep", "cache", "kernels", "sessions")
ENV_DIR = "REPRO_BENCH_DIR"
ENV_REGRESSION_PCT = "BENCH_REGRESSION_PCT"
DEFAULT_REGRESSION_PCT = 20.0


def bench_dir(explicit: "str | Path | None" = None) -> Path:
    """Where BENCH_*.json records live (flag > env > ./benchmarks > cwd)."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_DIR)
    if env:
        return Path(env)
    default = Path("benchmarks")
    return default if default.is_dir() else Path(".")


def record_path(area: str, directory: "str | Path | None" = None) -> Path:
    """The trajectory file of one bench area."""
    if area not in AREAS:
        raise ValueError(f"unknown bench area {area!r}; choose from {AREAS}")
    return bench_dir(directory) / f"BENCH_{area}.json"


def host_info() -> dict:
    """The execution environment a record was taken on.

    Includes the kernel backend that would actually dispatch
    (``kernel_backend``) and the numba version (``numba``, null when not
    installed) so trajectory points taken on different tiers stay
    attributable — a compiled-tier speedup point is not comparable to a
    numpy one without this.
    """
    from ..kernels import dispatch

    with warnings.catch_warnings():
        # Recording telemetry must not surface the one-time compiled-tier
        # fallback warning on numba-less hosts.
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        backend = dispatch.active_backend()
    if dispatch.numba_available():
        import numba

        numba_version = numba.__version__
    else:
        numba_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "kernel_backend": backend,
        "numba": numba_version,
    }


def git_sha() -> "str | None":
    """The current commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        )
        return out.stdout.strip() or None
    except Exception:
        return None


def make_record(
    area: str,
    headline_metric: str,
    headline_value: float,
    rows: "list[dict]",
    params: "dict | None" = None,
    spec_keys: "dict | None" = None,
    notes: "str | None" = None,
) -> dict:
    """Assemble one trajectory point (pure data, no I/O besides git)."""
    if area not in AREAS:
        raise ValueError(f"unknown bench area {area!r}; choose from {AREAS}")
    return {
        "area": area,
        "recorded_at": datetime.now(timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z"),
        "git_sha": git_sha(),
        "host": host_info(),
        "params": params or {},
        "spec_keys": spec_keys or {},
        "rows": rows,
        "headline": {
            "metric": headline_metric,
            "value": float(headline_value),
        },
        "notes": notes,
    }


def _load_file(path: Path) -> "list[dict]":
    """A trajectory file's records; corrupt/missing files read as empty."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []


def append_record(record: dict, directory: "str | Path | None" = None) -> Path:
    """Append one record to its area's BENCH_<area>.json (atomic write)."""
    path = record_path(record["area"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = _load_file(path)
    records.append(record)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(records, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_trajectories(
    directory: "str | Path | None" = None,
) -> "dict[str, list[dict]]":
    """All areas' committed records, in file (chronological) order."""
    out = {}
    for area in AREAS:
        records = _load_file(record_path(area, directory))
        if records:
            out[area] = records
    return out


def regression_pct() -> float:
    """The allowed headline drop in percent (BENCH_REGRESSION_PCT knob)."""
    return float(os.environ.get(ENV_REGRESSION_PCT, DEFAULT_REGRESSION_PCT))


def render_report(
    trajectories: "dict[str, list[dict]]", allowed_drop_pct: float
) -> "tuple[str, list[str]]":
    """The trajectory table plus the list of regression messages.

    A regression is the latest point's headline value dropping more than
    ``allowed_drop_pct`` percent below the previous committed point of
    the same area (headlines are higher-is-better ratios).
    """
    header = (
        f"{'area':<10}{'points':>7}{'latest':>22}"
        f"{'headline':>42}{'value':>9}{'prev':>9}{'delta':>9}"
    )
    lines = [header, "-" * len(header)]
    regressions: "list[str]" = []
    for area in AREAS:
        records = trajectories.get(area)
        if not records:
            continue
        latest = records[-1]
        value = latest["headline"]["value"]
        metric = latest["headline"]["metric"]
        prev = records[-2]["headline"]["value"] if len(records) > 1 else None
        if prev is None:
            delta_txt = "-"
        else:
            delta = 100.0 * (value - prev) / prev if prev else float("inf")
            delta_txt = f"{delta:+.1f}%"
            if prev > 0 and value < prev * (1.0 - allowed_drop_pct / 100.0):
                regressions.append(
                    f"{area}: headline '{metric}' fell {abs(delta):.1f}% "
                    f"({prev:.2f} -> {value:.2f}); allowed drop is "
                    f"{allowed_drop_pct:.0f}% (BENCH_REGRESSION_PCT)"
                )
        lines.append(
            f"{area:<10}{len(records):>7}{latest['recorded_at']:>22}"
            f"{metric:>42}{value:>9.2f}"
            f"{(f'{prev:.2f}' if prev is not None else '-'):>9}"
            f"{delta_txt:>9}"
        )
    return "\n".join(lines), regressions
